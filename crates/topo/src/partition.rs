//! Shard assignment strategies for the parallel simulation engine.
//!
//! A [`Partition`] maps every bridge and every host of a topology to a
//! shard (worker thread) of [`arppath_netsim::ShardedNetwork`]. The
//! quality of the assignment decides both correctness *bounds* and
//! speed: the sharded engine's lookahead is the minimum propagation
//! delay over **cut** links, so a good partition cuts only links with
//! generous delays and keeps chatty neighbours together.
//!
//! Two strategies cover the repository's workloads:
//!
//! * [`Partition::rack_major`] — for fat-trees: whole pods (edge +
//!   aggregation switches and every host under them) go to one shard,
//!   contiguously; core switches spread evenly. Host↔edge links — the
//!   shortest, busiest links in the fabric — are never cut, so the
//!   lookahead is set by the jittered fabric links (≥ 1 µs on
//!   [`crate::generic::fat_tree_jittered`]).
//! * [`Partition::round_robin`] — for arbitrary graphs: node `i` to
//!   shard `i mod N`. No locality, maximum cut — the stress-test
//!   partition the equivalence suite uses precisely *because* it cuts
//!   as many links as possible.

use crate::builder::BridgeIx;
use crate::generic::FatTree;

/// A complete bridge + host → shard assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    shards: usize,
    bridge_shard: Vec<usize>,
    host_shard: Vec<usize>,
}

impl Partition {
    /// Wrap an explicit assignment (`bridge_shard[ix]`,
    /// `host_shard[host index]`).
    ///
    /// # Panics
    /// If `shards` is zero or any entry names a shard out of range.
    pub fn new(shards: usize, bridge_shard: Vec<usize>, host_shard: Vec<usize>) -> Self {
        assert!(shards >= 1, "a partition needs at least one shard");
        for (i, &s) in bridge_shard.iter().enumerate() {
            assert!(s < shards, "bridge {i} assigned to shard {s}, but only {shards} exist");
        }
        for (i, &s) in host_shard.iter().enumerate() {
            assert!(s < shards, "host {i} assigned to shard {s}, but only {shards} exist");
        }
        Partition { shards, bridge_shard, host_shard }
    }

    /// Node `i` (bridges and hosts independently) to shard `i mod
    /// shards` — locality-free, cuts aggressively.
    pub fn round_robin(bridges: usize, hosts: usize, shards: usize) -> Self {
        Partition::new(
            shards,
            (0..bridges).map(|i| i % shards).collect(),
            (0..hosts).map(|i| i % shards).collect(),
        )
    }

    /// The fat-tree partition: pod `p` (its `k/2` edge and `k/2`
    /// aggregation switches plus all hosts racked under them) goes to
    /// shard `p·shards/k`; core switch `c` goes to shard
    /// `c·shards/(k/2)²`. Both are contiguous block assignments, so
    /// shard populations differ by at most one pod.
    ///
    /// Rack-local host↔edge links are intra-shard by construction —
    /// the property `tests` below pin — so only fabric links
    /// (edge↔aggregation across nothing, aggregation↔core across pod
    /// boundaries) are ever cut.
    ///
    /// `hosts` is the number of hosts actually attached (rack-major,
    /// `hosts_per_edge` per rack), which may undershoot capacity.
    ///
    /// # Panics
    /// If `shards` exceeds the pod count `k` (some shard would own
    /// nothing) or `hosts` exceeds the fabric's capacity.
    pub fn rack_major(ft: &FatTree, hosts_per_edge: usize, hosts: usize, shards: usize) -> Self {
        assert!(shards >= 1, "a partition needs at least one shard");
        assert!(
            shards <= ft.k,
            "rack-major partition of a k={} fat-tree supports at most {} shards (one pod each)",
            ft.k,
            ft.k
        );
        assert!(hosts <= ft.host_capacity(hosts_per_edge), "more hosts than the fabric racks");
        let bridges = ft.core.len() + ft.aggregation.len() + ft.edge.len();
        let mut bridge_shard = vec![0usize; bridges];
        for (c, &ix) in ft.core.iter().enumerate() {
            bridge_shard[ix.0] = c * shards / ft.core.len();
        }
        let half = ft.k / 2;
        for pod in 0..ft.k {
            let shard = pod * shards / ft.k;
            for j in 0..half {
                bridge_shard[ft.aggregation[pod * half + j].0] = shard;
                bridge_shard[ft.edge[pod * half + j].0] = shard;
            }
        }
        let host_shard =
            (0..hosts).map(|h| bridge_shard[ft.edge_of_host(h, hosts_per_edge).0]).collect();
        Partition { shards, bridge_shard, host_shard }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Bridges covered.
    pub fn bridge_count(&self) -> usize {
        self.bridge_shard.len()
    }

    /// Hosts covered.
    pub fn host_count(&self) -> usize {
        self.host_shard.len()
    }

    /// The shard bridge `ix` lives in.
    pub fn bridge_shard(&self, ix: BridgeIx) -> usize {
        self.bridge_shard[ix.0]
    }

    /// The shard host `host` (attachment index) lives in.
    pub fn host_shard(&self, host: usize) -> usize {
        self.host_shard[host]
    }

    /// Flatten into the global-node-id assignment the sharded builder
    /// consumes: bridges first (declaration order), then hosts
    /// (attachment order) — the exact id order
    /// [`crate::TopoBuilder::build`] assigns.
    pub fn assignment(&self) -> Vec<usize> {
        self.bridge_shard.iter().chain(self.host_shard.iter()).copied().collect()
    }

    /// How many nodes (bridges + hosts) each shard owns.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shards];
        for &s in self.bridge_shard.iter().chain(self.host_shard.iter()) {
            sizes[s] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BridgeKind, TopoBuilder};
    use crate::generic;
    use arppath::ArpPathConfig;

    /// The satellite contract: every node is assigned exactly once (the
    /// flattened assignment covers each node id with exactly one shard,
    /// all in range) and rack-local host↔edge links stay intra-shard.
    #[test]
    fn rack_major_covers_every_node_once_and_keeps_racks_local() {
        // The k=16 row is E12's geometry: 8 shards of two pods each.
        for (k, hosts_per_edge, shards) in [(4, 2, 2), (4, 4, 4), (6, 3, 3), (8, 2, 4), (16, 2, 8)]
        {
            let mut t = TopoBuilder::new(BridgeKind::ArpPath(ArpPathConfig::default()));
            let ft = generic::fat_tree(&mut t, k);
            let hosts = ft.host_capacity(hosts_per_edge);
            let p = Partition::rack_major(&ft, hosts_per_edge, hosts, shards);

            // Exactly one entry per node, every entry a real shard.
            assert_eq!(p.bridge_count(), t.bridge_count(), "k={k}");
            assert_eq!(p.host_count(), hosts, "k={k}");
            let flat = p.assignment();
            assert_eq!(flat.len(), t.bridge_count() + hosts, "k={k}");
            assert!(flat.iter().all(|&s| s < shards), "k={k}: shard out of range");
            assert_eq!(p.shard_sizes().iter().sum::<usize>(), flat.len(), "k={k}");
            assert!(p.shard_sizes().iter().all(|&n| n > 0), "k={k}: an empty shard");

            // Rack-locality: every host shares its edge switch's shard.
            for h in 0..hosts {
                let edge = ft.edge_of_host(h, hosts_per_edge);
                assert_eq!(
                    p.host_shard(h),
                    p.bridge_shard(edge),
                    "k={k}: host {h} split from its rack"
                );
            }
            // Pods are atomic: an edge and every aggregation switch of
            // its pod agree.
            let half = k / 2;
            for pod in 0..k {
                let shard = p.bridge_shard(ft.edge[pod * half]);
                for j in 0..half {
                    assert_eq!(p.bridge_shard(ft.edge[pod * half + j]), shard);
                    assert_eq!(p.bridge_shard(ft.aggregation[pod * half + j]), shard);
                }
            }
        }
    }

    /// The full grid the differential fuzzer draws from — k ∈ {4, 6, 8}
    /// × shards ∈ {2, 3, 4} × full and partial racks — holding the two
    /// invariants the sharded engine's lookahead depends on:
    ///
    /// 1. **Host↔edge links are never cut** (they carry the smallest
    ///    propagation delays in the fabric; cutting one would collapse
    ///    the lookahead to the host-link delay).
    /// 2. **Pods are atomic**: all edge and aggregation switches of a
    ///    pod, and every host racked under them, share one shard — so
    ///    the only cut links are aggregation↔core.
    #[test]
    fn rack_major_grid_never_cuts_racks_and_keeps_pods_atomic() {
        for k in [4usize, 6, 8, 16] {
            for shards in [2usize, 3, 4] {
                for hosts_per_edge in [1usize, 2] {
                    let mut t = TopoBuilder::new(BridgeKind::ArpPath(ArpPathConfig::default()));
                    let ft = generic::fat_tree(&mut t, k);
                    let capacity = ft.host_capacity(hosts_per_edge);
                    // Full racks, and a partial attachment one rack shy.
                    for hosts in [capacity, capacity - hosts_per_edge] {
                        let p = Partition::rack_major(&ft, hosts_per_edge, hosts, shards);
                        let ctx =
                            format!("k={k} shards={shards} hpe={hosts_per_edge} hosts={hosts}");

                        // (1) Host↔edge links intra-shard, every host.
                        for h in 0..hosts {
                            let edge = ft.edge_of_host(h, hosts_per_edge);
                            assert_eq!(
                                p.host_shard(h),
                                p.bridge_shard(edge),
                                "{ctx}: host {h}↔edge link cut"
                            );
                        }

                        // (2) Pod atomicity, switches and hosts alike.
                        let half = k / 2;
                        for pod in 0..k {
                            let shard = p.bridge_shard(ft.edge[pod * half]);
                            for j in 0..half {
                                assert_eq!(
                                    p.bridge_shard(ft.edge[pod * half + j]),
                                    shard,
                                    "{ctx}: pod {pod} edge {j} strayed"
                                );
                                assert_eq!(
                                    p.bridge_shard(ft.aggregation[pod * half + j]),
                                    shard,
                                    "{ctx}: pod {pod} aggregation {j} strayed"
                                );
                            }
                        }
                        for h in 0..hosts {
                            let pod = ft.pod_of_host(h, hosts_per_edge);
                            assert_eq!(
                                p.host_shard(h),
                                p.bridge_shard(ft.edge[pod * half]),
                                "{ctx}: host {h} split from pod {pod}"
                            );
                        }

                        // Structural sanity: total coverage, no empty
                        // shard, and contiguous-block balance (shard
                        // populations within one pod + its racks).
                        let flat = p.assignment();
                        assert_eq!(flat.len(), t.bridge_count() + hosts, "{ctx}");
                        assert!(flat.iter().all(|&s| s < shards), "{ctx}: shard out of range");
                        let sizes = p.shard_sizes();
                        assert!(sizes.iter().all(|&n| n > 0), "{ctx}: an empty shard");
                        let pod_weight = 2 * half + half * hosts_per_edge;
                        let (max, min) =
                            (*sizes.iter().max().unwrap(), *sizes.iter().min().unwrap());
                        assert!(
                            max - min <= 2 * pod_weight,
                            "{ctx}: shard sizes {sizes:?} drift beyond a pod's weight"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn round_robin_spreads_and_covers() {
        let p = Partition::round_robin(7, 5, 3);
        assert_eq!(p.assignment().len(), 12);
        assert_eq!(p.shard_sizes(), vec![5, 4, 3]);
        assert_eq!(p.bridge_shard(BridgeIx(4)), 1);
        assert_eq!(p.host_shard(4), 1);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn rack_major_rejects_more_shards_than_pods() {
        let mut t = TopoBuilder::new(BridgeKind::ArpPath(ArpPathConfig::default()));
        let ft = generic::fat_tree(&mut t, 4);
        let _ = Partition::rack_major(&ft, 2, 16, 5);
    }

    #[test]
    #[should_panic(expected = "only 2 exist")]
    fn explicit_assignment_is_range_checked() {
        let _ = Partition::new(2, vec![0, 1, 2], vec![]);
    }
}
