//! Generic topology families: lines, rings, grids, meshes, fat-trees
//! and random connected graphs — the scaling substrate for experiments
//! E5–E7 and the property-based loop-freedom tests.

use crate::builder::{BridgeIx, TopoBuilder};
use arppath_netsim::{LinkParams, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A chain `B0—B1—…—B(n-1)`. Returns the bridges in order.
pub fn line(t: &mut TopoBuilder, n: usize) -> Vec<BridgeIx> {
    assert!(n >= 1);
    let bridges: Vec<BridgeIx> = (0..n).map(|i| t.bridge(format!("L{i}"))).collect();
    for w in bridges.windows(2) {
        t.connect(w[0], w[1]);
    }
    bridges
}

/// A ring of `n ≥ 3` bridges.
pub fn ring(t: &mut TopoBuilder, n: usize) -> Vec<BridgeIx> {
    assert!(n >= 3, "a ring needs at least 3 bridges");
    let bridges: Vec<BridgeIx> = (0..n).map(|i| t.bridge(format!("R{i}"))).collect();
    for i in 0..n {
        t.connect(bridges[i], bridges[(i + 1) % n]);
    }
    bridges
}

/// A `w × h` grid (4-neighbour mesh). Returns bridges in row-major
/// order; `grid[y * w + x]`.
pub fn grid(t: &mut TopoBuilder, w: usize, h: usize) -> Vec<BridgeIx> {
    assert!(w >= 1 && h >= 1);
    let bridges: Vec<BridgeIx> =
        (0..w * h).map(|i| t.bridge(format!("G{}x{}", i % w, i / w))).collect();
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if x + 1 < w {
                t.connect(bridges[i], bridges[i + 1]);
            }
            if y + 1 < h {
                t.connect(bridges[i], bridges[i + w]);
            }
        }
    }
    bridges
}

/// A full mesh over `n` bridges.
pub fn full_mesh(t: &mut TopoBuilder, n: usize) -> Vec<BridgeIx> {
    let bridges: Vec<BridgeIx> = (0..n).map(|i| t.bridge(format!("M{i}"))).collect();
    for i in 0..n {
        for j in i + 1..n {
            t.connect(bridges[i], bridges[j]);
        }
    }
    bridges
}

/// The three layers of a k-ary fat-tree.
#[derive(Debug, Clone)]
pub struct FatTree {
    /// Core switches, `(k/2)²` of them.
    pub core: Vec<BridgeIx>,
    /// Aggregation switches, `k/2` per pod.
    pub aggregation: Vec<BridgeIx>,
    /// Edge switches, `k/2` per pod; attach hosts here.
    pub edge: Vec<BridgeIx>,
    /// Pod count (= k).
    pub k: usize,
}

/// A k-ary fat-tree (k even, ≥ 2): the canonical data-center topology
/// the underlying FastPath work (paper ref \[4\]) targets. Each pod has
/// k/2 edge and k/2 aggregation switches fully bipartitely meshed;
/// aggregation switch `j` of each pod connects to core group `j`.
pub fn fat_tree(t: &mut TopoBuilder, k: usize) -> FatTree {
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even");
    let half = k / 2;
    let core: Vec<BridgeIx> = (0..half * half).map(|i| t.bridge(format!("C{i}"))).collect();
    let mut aggregation = Vec::new();
    let mut edge = Vec::new();
    for pod in 0..k {
        let aggs: Vec<BridgeIx> = (0..half).map(|j| t.bridge(format!("A{pod}.{j}"))).collect();
        let edges: Vec<BridgeIx> = (0..half).map(|j| t.bridge(format!("E{pod}.{j}"))).collect();
        for &a in &aggs {
            for &e in &edges {
                t.connect(a, e);
            }
        }
        for (j, &a) in aggs.iter().enumerate() {
            for c in 0..half {
                t.connect(a, core[j * half + c]);
            }
        }
        aggregation.extend(aggs);
        edge.extend(edges);
    }
    FatTree { core, aggregation, edge, k }
}

/// A connected random graph: a uniformly random spanning tree plus
/// `extra_edges` distinct non-tree edges, deterministic in `seed`.
/// Link propagation delays are drawn uniformly from 1–10 µs, giving
/// the latency race something to choose between.
pub fn random_connected(
    t: &mut TopoBuilder,
    n: usize,
    extra_edges: usize,
    seed: u64,
) -> Vec<BridgeIx> {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let bridges: Vec<BridgeIx> = (0..n).map(|i| t.bridge(format!("N{i}"))).collect();
    let mut edges = std::collections::BTreeSet::new();
    let delay = |rng: &mut StdRng| LinkParams::gigabit(SimDuration::micros(rng.gen_range(1..=10)));
    // Random attachment tree keeps it connected.
    for i in 1..n {
        let j = rng.gen_range(0..i);
        edges.insert((j, i));
        let p = delay(&mut rng);
        t.connect_with(bridges[j], bridges[i], p);
    }
    let max_extra = n * (n - 1) / 2 - (n - 1);
    let extra = extra_edges.min(max_extra);
    let mut added = 0;
    while added < extra {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if edges.insert(key) {
            let p = delay(&mut rng);
            t.connect_with(bridges[key.0], bridges[key.1], p);
            added += 1;
        }
    }
    bridges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BridgeKind;
    use arppath::ArpPathConfig;

    fn fresh() -> TopoBuilder {
        TopoBuilder::new(BridgeKind::ArpPath(ArpPathConfig::default()))
    }

    #[test]
    fn line_and_ring_shapes() {
        let mut t = fresh();
        line(&mut t, 4);
        assert_eq!(t.build().bridge_links.len(), 3);

        let mut t = fresh();
        ring(&mut t, 5);
        assert_eq!(t.build().bridge_links.len(), 5);
    }

    #[test]
    fn grid_edge_count() {
        let mut t = fresh();
        grid(&mut t, 3, 4);
        // 3x4 grid: horizontal 2*4 + vertical 3*3 = 17.
        assert_eq!(t.build().bridge_links.len(), 17);
    }

    #[test]
    fn full_mesh_edge_count() {
        let mut t = fresh();
        full_mesh(&mut t, 5);
        assert_eq!(t.build().bridge_links.len(), 10);
    }

    #[test]
    fn fat_tree_k4_shape() {
        let mut t = fresh();
        let ft = fat_tree(&mut t, 4);
        assert_eq!(ft.core.len(), 4);
        assert_eq!(ft.aggregation.len(), 8);
        assert_eq!(ft.edge.len(), 8);
        // Links: per pod 2*2 edge-agg = 4, ×4 pods = 16; agg-core: each
        // agg has 2 uplinks, 8 aggs = 16. Total 32.
        assert_eq!(t.build().bridge_links.len(), 32);
    }

    #[test]
    fn random_graph_is_deterministic_and_connected() {
        let build = |seed| {
            let mut t = fresh();
            random_connected(&mut t, 12, 6, seed);
            let built = t.build();
            built
                .bridge_links
                .iter()
                .map(|&l| {
                    let link = built.net.link(l);
                    (link.a.node.0, link.b.node.0)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(build(42), build(42), "same seed, same graph");
        assert_ne!(build(42), build(43), "different seed, different graph");
        // Connectivity: union-find over edges.
        let edges = build(7);
        let mut parent: Vec<usize> = (0..12).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for (a, b) in &edges {
            let (ra, rb) = (find(&mut parent, *a), find(&mut parent, *b));
            parent[ra] = rb;
        }
        let root = find(&mut parent, 0);
        for i in 1..12 {
            assert_eq!(find(&mut parent, i), root, "node {i} disconnected");
        }
    }

    #[test]
    fn random_graph_extra_edges_capped() {
        let mut t = fresh();
        // Ask for far more extra edges than a 4-node graph can hold.
        random_connected(&mut t, 4, 100, 1);
        let built = t.build();
        assert_eq!(built.bridge_links.len(), 6, "complete graph is the cap");
    }
}
