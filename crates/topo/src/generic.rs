//! Generic topology families: lines, rings, grids, meshes, fat-trees
//! and random connected graphs — the scaling substrate for experiments
//! E5–E7 and the property-based loop-freedom tests.

use crate::builder::{BridgeIx, TopoBuilder};
use arppath_netsim::{LinkParams, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A chain `B0—B1—…—B(n-1)`. Returns the bridges in order.
pub fn line(t: &mut TopoBuilder, n: usize) -> Vec<BridgeIx> {
    assert!(n >= 1);
    let bridges: Vec<BridgeIx> = (0..n).map(|i| t.bridge(format!("L{i}"))).collect();
    for w in bridges.windows(2) {
        t.connect(w[0], w[1]);
    }
    bridges
}

/// A ring of `n ≥ 3` bridges.
pub fn ring(t: &mut TopoBuilder, n: usize) -> Vec<BridgeIx> {
    assert!(n >= 3, "a ring needs at least 3 bridges");
    let bridges: Vec<BridgeIx> = (0..n).map(|i| t.bridge(format!("R{i}"))).collect();
    for i in 0..n {
        t.connect(bridges[i], bridges[(i + 1) % n]);
    }
    bridges
}

/// A `w × h` grid (4-neighbour mesh). Returns bridges in row-major
/// order; `grid[y * w + x]`.
pub fn grid(t: &mut TopoBuilder, w: usize, h: usize) -> Vec<BridgeIx> {
    assert!(w >= 1 && h >= 1);
    let bridges: Vec<BridgeIx> =
        (0..w * h).map(|i| t.bridge(format!("G{}x{}", i % w, i / w))).collect();
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if x + 1 < w {
                t.connect(bridges[i], bridges[i + 1]);
            }
            if y + 1 < h {
                t.connect(bridges[i], bridges[i + w]);
            }
        }
    }
    bridges
}

/// A full mesh over `n` bridges.
pub fn full_mesh(t: &mut TopoBuilder, n: usize) -> Vec<BridgeIx> {
    let bridges: Vec<BridgeIx> = (0..n).map(|i| t.bridge(format!("M{i}"))).collect();
    for i in 0..n {
        for j in i + 1..n {
            t.connect(bridges[i], bridges[j]);
        }
    }
    bridges
}

/// The three layers of a k-ary fat-tree.
#[derive(Debug, Clone)]
pub struct FatTree {
    /// Core switches, `(k/2)²` of them.
    pub core: Vec<BridgeIx>,
    /// Aggregation switches, `k/2` per pod.
    pub aggregation: Vec<BridgeIx>,
    /// Edge switches, `k/2` per pod; attach hosts here.
    pub edge: Vec<BridgeIx>,
    /// Pod count (= k).
    pub k: usize,
}

impl FatTree {
    /// Hosts the fabric can address with `hosts_per_edge` hosts per
    /// edge switch (= per rack). The canonical fat-tree attaches `k/2`
    /// hosts per edge for `k³/4` total; the load-balance study (E8)
    /// over-subscribes with more.
    pub fn host_capacity(&self, hosts_per_edge: usize) -> usize {
        self.edge.len() * hosts_per_edge
    }

    /// The rack (edge-switch position within [`FatTree::edge`]) that
    /// host `h` of a `hosts_per_edge`-per-rack array lives in. Hosts
    /// are numbered rack-major: hosts `0..hosts_per_edge` share rack 0.
    pub fn rack_of_host(&self, h: usize, hosts_per_edge: usize) -> usize {
        assert!(hosts_per_edge > 0, "a rack holds at least one host");
        let rack = h / hosts_per_edge;
        assert!(rack < self.edge.len(), "host {h} exceeds capacity");
        rack
    }

    /// The edge switch host `h` attaches to (rack-major numbering).
    pub fn edge_of_host(&self, h: usize, hosts_per_edge: usize) -> BridgeIx {
        self.edge[self.rack_of_host(h, hosts_per_edge)]
    }

    /// The pod a rack belongs to (`k/2` racks per pod).
    pub fn pod_of_rack(&self, rack: usize) -> usize {
        assert!(rack < self.edge.len(), "rack {rack} out of range");
        rack / (self.k / 2)
    }

    /// The pod host `h` lives in.
    pub fn pod_of_host(&self, h: usize, hosts_per_edge: usize) -> usize {
        self.pod_of_rack(self.rack_of_host(h, hosts_per_edge))
    }

    /// Whether `ix` is a core switch of this fabric.
    pub fn is_core(&self, ix: BridgeIx) -> bool {
        self.core.contains(&ix)
    }

    /// Whether `ix` is an aggregation switch of this fabric.
    pub fn is_aggregation(&self, ix: BridgeIx) -> bool {
        self.aggregation.contains(&ix)
    }

    /// Whether `ix` is an edge switch of this fabric.
    pub fn is_edge(&self, ix: BridgeIx) -> bool {
        self.edge.contains(&ix)
    }
}

/// A k-ary fat-tree (k even, ≥ 2): the canonical data-center topology
/// the underlying FastPath work (paper ref \[4\]) targets. Each pod has
/// k/2 edge and k/2 aggregation switches fully bipartitely meshed;
/// aggregation switch `j` of each pod connects to core group `j`.
///
/// The counting identities: `5k²/4` switches (`(k/2)²` core, `k²/2`
/// aggregation, `k²/2` edge) wired by `k³/2` links.
///
/// # Example
///
/// ```
/// use arppath::ArpPathConfig;
/// use arppath_topo::{generic, BridgeKind, TopoBuilder};
///
/// let mut t = TopoBuilder::new(BridgeKind::ArpPath(ArpPathConfig::default()));
/// let ft = generic::fat_tree(&mut t, 4);
/// assert_eq!((ft.core.len(), ft.aggregation.len(), ft.edge.len()), (4, 8, 8));
///
/// // Rack-major host addressing: 2 hosts per edge switch = 16 hosts.
/// assert_eq!(ft.host_capacity(2), 16);
/// assert_eq!(ft.rack_of_host(5, 2), 2);          // hosts 4,5 share rack 2
/// assert_eq!(ft.pod_of_host(5, 2), 1);           // racks 2,3 form pod 1
/// assert_eq!(ft.edge_of_host(5, 2), ft.edge[2]);
///
/// let built = t.build();
/// assert_eq!(built.bridge_links.len(), 32);      // k³/2
/// ```
pub fn fat_tree(t: &mut TopoBuilder, k: usize) -> FatTree {
    fat_tree_with(t, k, &mut || LinkParams::default())
}

/// A k-ary fat-tree whose fabric links carry deterministic seeded
/// propagation jitter (uniform 1–10 µs, like [`random_connected`]).
///
/// On a perfectly symmetric fabric every ARP race resolves by the
/// simulator's deterministic tie-break, so all flows funnel onto one
/// core — physically unrealistic. Real fabrics have per-link variance
/// (cable lengths, transceiver skew); this variant models it, which is
/// what lets the race scatter host pairs across the parallel core
/// switches (the load-balance study, E8).
pub fn fat_tree_jittered(t: &mut TopoBuilder, k: usize, seed: u64) -> FatTree {
    let mut rng = StdRng::seed_from_u64(seed);
    fat_tree_with(t, k, &mut move || {
        LinkParams::gigabit(SimDuration::micros(rng.gen_range(1..=10)))
    })
}

/// Shared fat-tree wiring; `params` is drawn once per fabric link in a
/// fixed declaration order (per pod: edge↔agg meshes, then core
/// uplinks), so seeded variants are reproducible.
fn fat_tree_with(t: &mut TopoBuilder, k: usize, params: &mut dyn FnMut() -> LinkParams) -> FatTree {
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even");
    let half = k / 2;
    let core: Vec<BridgeIx> = (0..half * half).map(|i| t.bridge(format!("C{i}"))).collect();
    let mut aggregation = Vec::new();
    let mut edge = Vec::new();
    for pod in 0..k {
        let aggs: Vec<BridgeIx> = (0..half).map(|j| t.bridge(format!("A{pod}.{j}"))).collect();
        let edges: Vec<BridgeIx> = (0..half).map(|j| t.bridge(format!("E{pod}.{j}"))).collect();
        for &a in &aggs {
            for &e in &edges {
                t.connect_with(a, e, params());
            }
        }
        for (j, &a) in aggs.iter().enumerate() {
            for c in 0..half {
                t.connect_with(a, core[j * half + c], params());
            }
        }
        aggregation.extend(aggs);
        edge.extend(edges);
    }
    FatTree { core, aggregation, edge, k }
}

/// A connected random graph: a uniformly random spanning tree plus
/// `extra_edges` distinct non-tree edges, deterministic in `seed`.
/// Link propagation delays are drawn uniformly from 1–10 µs, giving
/// the latency race something to choose between.
pub fn random_connected(
    t: &mut TopoBuilder,
    n: usize,
    extra_edges: usize,
    seed: u64,
) -> Vec<BridgeIx> {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let bridges: Vec<BridgeIx> = (0..n).map(|i| t.bridge(format!("N{i}"))).collect();
    let mut edges = std::collections::BTreeSet::new();
    let delay = |rng: &mut StdRng| LinkParams::gigabit(SimDuration::micros(rng.gen_range(1..=10)));
    // Random attachment tree keeps it connected.
    for i in 1..n {
        let j = rng.gen_range(0..i);
        edges.insert((j, i));
        let p = delay(&mut rng);
        t.connect_with(bridges[j], bridges[i], p);
    }
    let max_extra = n * (n - 1) / 2 - (n - 1);
    let extra = extra_edges.min(max_extra);
    let mut added = 0;
    while added < extra {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if edges.insert(key) {
            let p = delay(&mut rng);
            t.connect_with(bridges[key.0], bridges[key.1], p);
            added += 1;
        }
    }
    bridges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BridgeKind;
    use arppath::ArpPathConfig;

    fn fresh() -> TopoBuilder {
        TopoBuilder::new(BridgeKind::ArpPath(ArpPathConfig::default()))
    }

    #[test]
    fn line_and_ring_shapes() {
        let mut t = fresh();
        line(&mut t, 4);
        assert_eq!(t.build().bridge_links.len(), 3);

        let mut t = fresh();
        ring(&mut t, 5);
        assert_eq!(t.build().bridge_links.len(), 5);
    }

    #[test]
    fn grid_edge_count() {
        let mut t = fresh();
        grid(&mut t, 3, 4);
        // 3x4 grid: horizontal 2*4 + vertical 3*3 = 17.
        assert_eq!(t.build().bridge_links.len(), 17);
    }

    #[test]
    fn full_mesh_edge_count() {
        let mut t = fresh();
        full_mesh(&mut t, 5);
        assert_eq!(t.build().bridge_links.len(), 10);
    }

    #[test]
    fn fat_tree_k4_shape() {
        let mut t = fresh();
        let ft = fat_tree(&mut t, 4);
        assert_eq!(ft.core.len(), 4);
        assert_eq!(ft.aggregation.len(), 8);
        assert_eq!(ft.edge.len(), 8);
        // Links: per pod 2*2 edge-agg = 4, ×4 pods = 16; agg-core: each
        // agg has 2 uplinks, 8 aggs = 16. Total 32.
        assert_eq!(t.build().bridge_links.len(), 32);
    }

    #[test]
    fn fat_tree_host_addressing_is_rack_major() {
        let mut t = fresh();
        let ft = fat_tree(&mut t, 4);
        assert_eq!(ft.host_capacity(3), 24);
        // Rack-major: hosts 0..3 on rack 0, 3..6 on rack 1, ...
        assert_eq!(ft.rack_of_host(0, 3), 0);
        assert_eq!(ft.rack_of_host(2, 3), 0);
        assert_eq!(ft.rack_of_host(3, 3), 1);
        assert_eq!(ft.rack_of_host(23, 3), 7);
        // k/2 = 2 racks per pod.
        assert_eq!(ft.pod_of_rack(0), 0);
        assert_eq!(ft.pod_of_rack(1), 0);
        assert_eq!(ft.pod_of_rack(2), 1);
        assert_eq!(ft.pod_of_host(23, 3), 3);
        assert_eq!(ft.edge_of_host(7, 3), ft.edge[2]);
        // Layer membership predicates agree with the layer lists.
        assert!(ft.is_core(ft.core[0]) && !ft.is_edge(ft.core[0]));
        assert!(ft.is_aggregation(ft.aggregation[0]) && !ft.is_core(ft.aggregation[0]));
        assert!(ft.is_edge(ft.edge[0]) && !ft.is_aggregation(ft.edge[0]));
    }

    #[test]
    fn jittered_fat_tree_is_seed_deterministic_with_same_shape() {
        let delays = |seed| {
            let mut t = fresh();
            fat_tree_jittered(&mut t, 4, seed);
            let built = t.build();
            built
                .bridge_links
                .iter()
                .map(|&l| built.net.link(l).params.propagation.as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(delays(7), delays(7), "same seed, same delays");
        assert_ne!(delays(7), delays(8), "different seed, different delays");
        // Jitter stays in the documented 1-10us band and the shape
        // matches the unjittered tree.
        let d = delays(7);
        assert_eq!(d.len(), 32);
        assert!(d.iter().all(|&ns| (1_000..=10_000).contains(&ns)));
        assert!(d.iter().any(|&ns| ns != d[0]), "delays must actually vary");
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn fat_tree_host_addressing_checks_capacity() {
        let mut t = fresh();
        let ft = fat_tree(&mut t, 4);
        let _ = ft.rack_of_host(24, 3);
    }

    #[test]
    fn random_graph_is_deterministic_and_connected() {
        let build = |seed| {
            let mut t = fresh();
            random_connected(&mut t, 12, 6, seed);
            let built = t.build();
            built
                .bridge_links
                .iter()
                .map(|&l| {
                    let link = built.net.link(l);
                    (link.a.node.0, link.b.node.0)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(build(42), build(42), "same seed, same graph");
        assert_ne!(build(42), build(43), "different seed, different graph");
        // Connectivity: union-find over edges.
        let edges = build(7);
        let mut parent: Vec<usize> = (0..12).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for (a, b) in &edges {
            let (ra, rb) = (find(&mut parent, *a), find(&mut parent, *b));
            parent[ra] = rb;
        }
        let root = find(&mut parent, 0);
        for i in 1..12 {
            assert_eq!(find(&mut parent, i), root, "node {i} disconnected");
        }
    }

    #[test]
    fn random_graph_extra_edges_capped() {
        let mut t = fresh();
        // Ask for far more extra edges than a 4-node graph can hold.
        random_connected(&mut t, 4, 100, 1);
        let built = t.build();
        assert_eq!(built.bridge_links.len(), 6, "complete graph is the cap");
    }
}
