//! Structural properties of the k-ary fat-tree generator — the
//! datacenter-scale substrate of the All-Path scalability direction
//! (arXiv:1703.08744): switch counts, edge counts, layer shapes, and
//! connectivity, for every even arity the experiments use.
//!
//! (The behavioural half — ARP-Path floods on a fat-tree terminate
//! without a spanning tree — lives in the workspace-level
//! `tests/loop_freedom.rs` harness, which needs the host crate.)

use arppath::ArpPathConfig;
use arppath_topo::{generic, BridgeKind, TopoBuilder};
use proptest::prelude::*;

fn fresh() -> TopoBuilder {
    TopoBuilder::new(BridgeKind::ArpPath(ArpPathConfig::default()))
}

/// Union-find connectivity over an edge list.
fn is_connected(n: usize, edges: &[(usize, usize)]) -> bool {
    fn find(p: &mut Vec<usize>, x: usize) -> usize {
        if p[x] != x {
            let r = find(p, p[x]);
            p[x] = r;
        }
        p[x]
    }
    let mut parent: Vec<usize> = (0..n).collect();
    for &(a, b) in edges {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        parent[ra] = rb;
    }
    let root = find(&mut parent, 0);
    (1..n).all(|i| find(&mut parent, i) == root)
}

#[test]
fn fat_tree_shape_for_k_2_4_6() {
    for k in [2usize, 4, 6] {
        let mut t = fresh();
        let ft = generic::fat_tree(&mut t, k);
        let half = k / 2;

        // Layer sizes: (k/2)² core, k·(k/2) aggregation, k·(k/2) edge.
        assert_eq!(ft.core.len(), half * half, "k={k}: core count");
        assert_eq!(ft.aggregation.len(), k * half, "k={k}: aggregation count");
        assert_eq!(ft.edge.len(), k * half, "k={k}: edge count");

        // Total switches: the canonical 5k²/4.
        let switches = ft.core.len() + ft.aggregation.len() + ft.edge.len();
        assert_eq!(switches, 5 * k * k / 4, "k={k}: switch count must be 5k²/4");
        assert_eq!(t.bridge_count(), switches);

        // Total links: k·(k/2)² pod-internal + k·(k/2)·(k/2) uplinks
        // = k³/2.
        let built = t.build();
        assert_eq!(built.bridge_links.len(), k * k * k / 2, "k={k}: edge count must be k³/2");

        // Connectivity across all three layers.
        let edges: Vec<(usize, usize)> = built
            .bridge_links
            .iter()
            .map(|&l| {
                let link = built.net.link(l);
                (link.a.node.0, link.b.node.0)
            })
            .collect();
        assert!(is_connected(switches, &edges), "k={k}: fat-tree must be connected");
    }
}

#[test]
fn fat_tree_layers_partition_the_switches() {
    for k in [2usize, 4, 6] {
        let mut t = fresh();
        let ft = generic::fat_tree(&mut t, k);
        let mut all: Vec<usize> = ft
            .core
            .iter()
            .chain(ft.aggregation.iter())
            .chain(ft.edge.iter())
            .map(|b| b.0)
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 5 * k * k / 4, "k={k}: layers overlap or miss a switch");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Every even arity (not just the experiment sizes) satisfies the
    /// counting identities and stays connected.
    #[test]
    fn fat_tree_counts_hold_for_any_even_k(half in 1usize..=5) {
        let k = 2 * half;
        let mut t = fresh();
        let ft = generic::fat_tree(&mut t, k);
        prop_assert_eq!(ft.k, k);
        let switches = ft.core.len() + ft.aggregation.len() + ft.edge.len();
        prop_assert_eq!(switches, 5 * k * k / 4);
        let built = t.build();
        prop_assert_eq!(built.bridge_links.len(), k * k * k / 2);
        let edges: Vec<(usize, usize)> = built
            .bridge_links
            .iter()
            .map(|&l| {
                let link = built.net.link(l);
                (link.a.node.0, link.b.node.0)
            })
            .collect();
        prop_assert!(is_connected(switches, &edges));
    }

    /// Edge switches each have exactly k/2 uplinks (to every
    /// aggregation switch in their pod) and aggregation switches have
    /// exactly k/2 down- plus k/2 uplinks: degree k.
    #[test]
    fn fat_tree_degrees(half in 1usize..=4) {
        let k = 2 * half;
        let mut t = fresh();
        let ft = generic::fat_tree(&mut t, k);
        let built = t.build();
        let mut degree = vec![0usize; 5 * k * k / 4];
        for &l in &built.bridge_links {
            let link = built.net.link(l);
            degree[link.a.node.0] += 1;
            degree[link.b.node.0] += 1;
        }
        // NodeIds are assigned in bridge declaration order, so BridgeIx
        // and NodeId agree for a host-free topology.
        for &c in &ft.core {
            prop_assert_eq!(degree[c.0], k, "core switch degree");
        }
        for &a in &ft.aggregation {
            prop_assert_eq!(degree[a.0], k, "aggregation switch degree");
        }
        for &e in &ft.edge {
            prop_assert_eq!(degree[e.0], half, "edge switch uplink degree");
        }
    }
}
