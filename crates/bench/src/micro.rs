//! Shared micro-measurements for the fast-table data structures.
//!
//! Used twice: `benches/dleft_lookup.rs` wraps these fixtures in
//! criterion harnesses for `cargo bench`, and the `repro` binary calls
//! [`measure_all`] to embed the same medians in its machine-readable
//! `--bench-json` trajectory file (schema in `BASELINES.md`), so the
//! committed `BENCH_PR*.json` and the interactive bench output can
//! never drift apart structurally.
//!
//! Methodology matches the vendored criterion shim's spirit: time a
//! full pass over the working set, repeat for [`SAMPLES`] samples,
//! report the median per-operation nanoseconds. Accesses walk a
//! pre-shuffled key schedule so neither table gets sequential-locality
//! charity.

use arppath_netsim::{CalendarQueue, SimDuration, SimTime};
use arppath_switch::{AgingMap, DLeftTable};
use arppath_wire::MacAddr;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;
use std::time::Instant;

/// Working-set size for the table comparisons: the ≥10k-entry regime
/// the All-Path scalability study names as the pressure point.
pub const TABLE_ENTRIES: usize = 10_000;
/// Samples per measurement; the median is reported.
pub const SAMPLES: usize = 11;
/// d-left geometry holding [`TABLE_ENTRIES`] at ~30 % load (4 ways ×
/// 4096 buckets × 2 slots = 32768 slots).
pub const TABLE_BUCKET_BITS: u32 = 12;

/// Expiry far past every measured instant, so lookups always hit.
fn far() -> SimTime {
    SimTime::ZERO + SimDuration::secs(3600)
}

/// Deterministically shuffled key schedule (splitmix64 walk) of
/// `n` present keys; `miss` makes keys from a disjoint namespace.
pub fn key_schedule(n: usize, miss: bool) -> Vec<MacAddr> {
    let kind = if miss { 9 } else { 1 };
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut state = 0x243F_6A88_85A3_08D3u64;
    for i in (1..order.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order.into_iter().map(|i| MacAddr::from_index(kind, i)).collect()
}

/// A populated d-left table of [`TABLE_ENTRIES`] live entries.
pub fn dleft_fixture(n: usize) -> DLeftTable<MacAddr, u32> {
    let mut t = DLeftTable::with_bucket_bits(TABLE_BUCKET_BITS);
    for i in 0..n as u32 {
        t.insert(MacAddr::from_index(1, i), i, far());
    }
    assert_eq!(t.evictions(), 0, "fixture geometry must not evict");
    t
}

/// A populated `AgingMap` oracle of [`TABLE_ENTRIES`] live entries.
pub fn btree_fixture(n: usize) -> AgingMap<MacAddr, u32> {
    let mut t = AgingMap::new();
    for i in 0..n as u32 {
        t.insert(MacAddr::from_index(1, i), i, far());
    }
    t
}

/// Median per-op nanoseconds of `pass` (which performs `ops`
/// operations per call) over [`SAMPLES`] timed samples.
pub fn median_ns_per_op<F: FnMut() -> u64>(ops: usize, mut pass: F) -> f64 {
    // One warm-up pass outside the samples.
    black_box(pass());
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let started = Instant::now();
            black_box(pass());
            started.elapsed().as_nanos() as f64 / ops as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

/// Cohort size per timestamp in the scheduler churn (the engine's
/// same-instant batches: a flood fan-out, a burst of deliveries).
pub const CHURN_COHORT: u64 = 4;

/// Steady-state scheduler churn through the calendar queue, shaped
/// like the engine's hot loop: drain the head cohort, process it, and
/// schedule one follow-up per event a few hundred nanoseconds out
/// (TxDone → Deliver chains). Runs `rounds` drains over a standing
/// population of 16 cohorts; returns a checksum.
pub fn calq_churn(rounds: u64) -> u64 {
    let mut q = CalendarQueue::new();
    let mut seq = 0u64;
    let mut acc = 0u64;
    let mut state = 0x9E37_79B9u64;
    for i in 0..16u64 {
        for _ in 0..CHURN_COHORT {
            q.push(SimTime(1 + i * 800), seq % CHURN_COHORT, seq, seq);
            seq += 1;
        }
    }
    let mut batch = Vec::new();
    for _ in 0..rounds {
        let Some(t) = q.drain_head(&mut batch) else { break };
        let next = t + SimDuration::nanos(400 + ((state >> 40) & 1023));
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        for item in batch.drain(..) {
            acc = acc.wrapping_add(t.as_nanos() ^ item);
            q.push(next, seq % CHURN_COHORT, seq, item);
            seq += 1;
        }
    }
    acc
}

/// The identical churn through the old `BinaryHeap` scheduler,
/// including its same-timestamp batch-pop loop.
pub fn heap_churn(rounds: u64) -> u64 {
    let mut q: BinaryHeap<Reverse<(SimTime, u64, u64)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut acc = 0u64;
    let mut state = 0x9E37_79B9u64;
    for i in 0..16u64 {
        for _ in 0..CHURN_COHORT {
            q.push(Reverse((SimTime(1 + i * 800), seq, seq)));
            seq += 1;
        }
    }
    let mut batch = Vec::new();
    for _ in 0..rounds {
        let Some(Reverse((t, _, _))) = q.peek().copied() else { break };
        while let Some(Reverse((et, _, _))) = q.peek() {
            if *et != t {
                break;
            }
            let Some(Reverse((_, _, item))) = q.pop() else { unreachable!() };
            batch.push(item);
        }
        let next = t + SimDuration::nanos(400 + ((state >> 40) & 1023));
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        for item in batch.drain(..) {
            acc = acc.wrapping_add(t.as_nanos() ^ item);
            q.push(Reverse((next, seq, item)));
            seq += 1;
        }
    }
    acc
}

/// Every micro-measurement as `(key, median ns/op)` pairs — the
/// `micro_ns` section of the bench-trajectory JSON.
pub fn measure_all() -> Vec<(&'static str, f64)> {
    let n = TABLE_ENTRIES;
    let hits = key_schedule(n, false);
    let misses = key_schedule(n, true);
    let mut dleft = dleft_fixture(n);
    let mut btree = btree_fixture(n);
    let now = SimTime(1);
    let mut out = Vec::new();

    out.push((
        "dleft_get_hit_10k_ns",
        median_ns_per_op(n, || {
            hits.iter().filter_map(|k| dleft.get(k, now).copied()).map(u64::from).sum()
        }),
    ));
    out.push((
        "btree_get_hit_10k_ns",
        median_ns_per_op(n, || {
            hits.iter().filter_map(|k| btree.get(k, now).copied()).map(u64::from).sum()
        }),
    ));
    out.push((
        "dleft_get_miss_10k_ns",
        median_ns_per_op(n, || {
            misses.iter().filter(|k| dleft.get(k, now).is_some()).count() as u64
        }),
    ));
    out.push((
        "btree_get_miss_10k_ns",
        median_ns_per_op(n, || {
            misses.iter().filter(|k| btree.get(k, now).is_some()).count() as u64
        }),
    ));
    // The background-aging claim: sweeping a table with nothing
    // expired is near-free for the wheel, O(table) for the BTreeMap.
    // Batch sweeps per sample so the wheel's ~tens-of-ns figure is not
    // dominated by clock-read overhead.
    const SWEEPS: usize = 100;
    out.push((
        "dleft_sweep_idle_10k_ns",
        median_ns_per_op(SWEEPS, || (0..SWEEPS).map(|_| dleft.sweep(now) as u64).sum()),
    ));
    out.push((
        "btree_sweep_idle_10k_ns",
        median_ns_per_op(SWEEPS, || (0..SWEEPS).map(|_| btree.sweep(now) as u64).sum()),
    ));
    let churn_ops = 1024 * CHURN_COHORT as usize;
    out.push(("calq_churn_1k_ns", median_ns_per_op(churn_ops, || calq_churn(1024))));
    out.push(("heap_churn_1k_ns", median_ns_per_op(churn_ops, || heap_churn(1024))));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_hold_the_full_working_set() {
        let mut d = dleft_fixture(TABLE_ENTRIES);
        let mut b = btree_fixture(TABLE_ENTRIES);
        let now = SimTime(1);
        for k in key_schedule(TABLE_ENTRIES, false) {
            assert_eq!(d.get(&k, now), b.get(&k, now));
            assert!(d.get(&k, now).is_some());
        }
        for k in key_schedule(64, true) {
            assert_eq!(d.get(&k, now), None);
            assert_eq!(b.get(&k, now), None);
        }
    }

    #[test]
    fn churn_cycles_agree_on_checksums() {
        assert_eq!(calq_churn(1024), heap_churn(1024), "same schedule, same drain order");
    }
}
