//! **E11 — seeded station churn: table pressure, eviction storms, and
//! stale-path correction.**
//!
//! E1–E9 run static host populations, which PR 8's zero-eviction gate
//! pins: autosized d-left tables never evict under them, so the CAM
//! model's eviction machinery was untested *in situ*. This experiment
//! makes churn the workload: a seeded script of Poisson-shaped station
//! arrivals and departures plus MAC mobility between racks
//! ([`ChurnWorkload`]) plays out on the jittered fat-trees as
//! administrative carrier events on host access links — a departing
//! station's edge bridge flushes its port immediately
//! (`link_down_flushes`), a mover reappears behind a different rack
//! with the same MAC and IP, and every bridge's d-left table rides
//! through the resulting insert/expire/evict traffic.
//!
//! The same script runs under three **table regimes**:
//!
//! * **undersized** — `table_bucket_bits = 2` (32 slots), well under
//!   the active population: eviction storms and victim-age churn are
//!   the *expected* behavior;
//! * **headroom** — the builder's autosized default (≥ 4× headroom):
//!   the zero-eviction contract must survive churn;
//! * **oversized** — autosize + 2 bits: control for the control.
//!
//! Per (k, regime) the harness reports eviction counts, occupancy
//! high-water marks, mass-expiry sweep shapes, the victim-age
//! histogram, the **stale-path correction latency** distribution (per
//! mover: activation behind the new rack → first echo reply back —
//! the fabric's flush + re-learn + re-lock time), and a per-epoch Jain
//! fairness series over station deliveries ([`ChurnEpochs`]).
//!
//! Everything is a pure function of [`E11Params`]; the delivery trace
//! is byte-identical between the single-threaded and sharded engines
//! (churn events stay shard-local under rack-major partitions —
//! `tests/sharded_equivalence.rs` pins it).

use super::{host_ip, host_mac};
use arppath::ArpPathConfig;
use arppath_host::{ChurnConfig, ChurnHost, ChurnSpec, ChurnWorkload};
use arppath_metrics::{ChurnEpochs, LatencyStats, Table};
use arppath_netsim::{DeliveryTracer, NodeId, SimDuration, SimTime};
use arppath_switch::{bucket_bits_for, TableStats, VICTIM_AGE_BUCKETS};
use arppath_topo::{
    generic, BridgeIx, BridgeKind, BuiltTopology, ChurnGrid, FatTree, GridRole, Partition,
    ShardedTopology, StationLife, TopoBuilder,
};
use std::sync::{Arc, Mutex};

/// Settling time before the churn window opens: the initial population
/// attaches, ARPs and locks its paths first, so the churn observables
/// measure churn, not cold start.
const BASE_MS: u64 = 10;

/// Drain after the churn window closes: movers near the horizon still
/// get their correction round trips measured.
const DRAIN_MS: u64 = 50;

/// Fairness epoch length for the per-epoch Jain series.
const EPOCH_MS: u64 = 10;

/// The d-left geometry a fabric instance runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableRegime {
    /// The largest geometry still strictly below the station count
    /// (1–2× population overload) — the eviction-storm regime.
    ///
    /// Deliberately *scale-aware* rather than a fixed tiny table: the
    /// overload ratio is what the regime studies, and it must stay
    /// comparable across fabric sizes. A fixed 32-slot table is a
    /// 1.5× overload at k=4 but 4.5× at k=8 — and past roughly 2× the
    /// fabric does not produce a measurable eviction storm, it
    /// collapses entirely (every eviction is a unicast miss, every
    /// miss a repair flood; once the event backlog delays flood
    /// copies past `lock_time`, the dedup state for a wave expires
    /// before its last copies arrive and re-floods sustain themselves
    /// — a livelock, tens of millions of evictions in tens of
    /// simulated milliseconds).
    Undersized,
    /// The builder's autosized default (≥ 4× headroom over attached
    /// hosts); PR 8's zero-eviction contract must hold here.
    Headroom,
    /// Autosize + 2 bits (16× headroom): the sanity control.
    Oversized,
}

impl TableRegime {
    /// All three regimes, in report order.
    pub const ALL: [TableRegime; 3] =
        [TableRegime::Undersized, TableRegime::Headroom, TableRegime::Oversized];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            TableRegime::Undersized => "undersized",
            TableRegime::Headroom => "headroom",
            TableRegime::Oversized => "oversized",
        }
    }

    /// The bridge config for a fabric attaching `hosts` stations (the
    /// headroom regime leaves geometry unset so the topology builder
    /// autosizes it, exactly like every other experiment).
    ///
    /// Aging timers are scaled to the churn window and identical
    /// across regimes — only table geometry differs between cells.
    /// The 200 ms script stands in for hours of station lifetime, so
    /// the aging clock shrinks with it (E2 scales the STP timers the
    /// same way), and `learn_time` well under the horizon is what
    /// makes the aging behavior observable at all: a moved station's
    /// re-discovery floods race-lose against the fabric's stale
    /// `Learnt` entries until those age out (repair only fires on
    /// unicast *misses*, and a stale entry is a hit), and departed
    /// stations' entries must mass-expire through the timer wheel
    /// within the run instead of lingering past it.
    fn config(self, hosts: usize, stations: usize) -> ArpPathConfig {
        let base = ArpPathConfig {
            lock_time: SimDuration::millis(5),
            learn_time: SimDuration::millis(40),
            repair_hold: SimDuration::millis(10),
            ..ArpPathConfig::default()
        };
        match self {
            TableRegime::Undersized => {
                ArpPathConfig { table_bucket_bits: Some(undersized_bits(stations)), ..base }
            }
            TableRegime::Headroom => base,
            TableRegime::Oversized => {
                ArpPathConfig { table_bucket_bits: Some(bucket_bits_for(hosts) + 2), ..base }
            }
        }
    }
}

/// The largest `table_bucket_bits` whose geometry (4 ways × 2^bits
/// buckets × 2 slots) stays strictly below `stations`: the resulting
/// table is overloaded by 1–2× regardless of fabric size. See
/// [`TableRegime::Undersized`] for why the overload ratio must not
/// grow with the fabric.
fn undersized_bits(stations: usize) -> u32 {
    let mut bits = 0u32;
    while 8usize << (bits + 1) < stations {
        bits += 1;
    }
    bits
}

/// Parameters of one E11 run (one fabric size, all table regimes).
#[derive(Debug, Clone, Copy)]
pub struct E11Params {
    /// Fat-tree arity (even); racks = k²/2.
    pub k: usize,
    /// Station index space of the churn script.
    pub stations: usize,
    /// Stations present from the start.
    pub initial: usize,
    /// Churn window length.
    pub horizon: SimDuration,
    /// Per-slot arrival probability (‰) — see [`ChurnSpec`].
    pub arrival_per_mille: u32,
    /// Per-slot departure probability (‰).
    pub departure_per_mille: u32,
    /// Fraction of departures that are rack moves (‰).
    pub mobility_per_mille: u32,
    /// Script + jitter seed.
    pub seed: u64,
    /// Worker threads; `1` = single-threaded engine, `≥ 2` = sharded
    /// (rack-major, clamped to `k` like E8/E9).
    pub shards: usize,
    /// Per-pair lookahead matrix (vs the global-`L` compatibility
    /// window); only meaningful when `shards > 1`.
    pub use_matrix: bool,
}

impl E11Params {
    /// Canonical sizing for arity `k`: the station population scales
    /// with the rack count and deliberately overshoots the undersized
    /// regime's 32 slots from the start (`initial` = ¾ of the index
    /// space), so eviction pressure is structural, not luck.
    pub fn for_k(k: usize) -> Self {
        let racks = k * k / 2;
        let stations = racks * 6;
        E11Params {
            k,
            stations,
            initial: stations * 3 / 4,
            horizon: SimDuration::millis(200),
            arrival_per_mille: 20,
            departure_per_mille: 4,
            mobility_per_mille: 400,
            seed: 0xE11,
            shards: 1,
            use_matrix: true,
        }
    }
}

impl Default for E11Params {
    fn default() -> Self {
        E11Params::for_k(4)
    }
}

/// One (k, regime) cell of the churn study.
#[derive(Debug, Clone)]
pub struct E11Row {
    /// Fat-tree arity.
    pub k: usize,
    /// Table regime label.
    pub regime: &'static str,
    /// Host attachments (stations + mover second instances + fillers).
    pub hosts: usize,
    /// Stations that ever exist.
    pub stations: usize,
    /// Late arrivals / final departures / rack moves in the script.
    pub arrivals: usize,
    /// Final departures.
    pub departures: usize,
    /// Rack moves.
    pub moves: usize,
    /// Per-bridge d-left slot capacity under this regime.
    pub table_capacity: usize,
    /// Aggregated table statistics over every bridge.
    pub table: TableStats,
    /// Highest per-bridge occupancy high-water mark.
    pub peak_occupancy: usize,
    /// Echo probes sent across all station instances.
    pub probes_tx: u64,
    /// Echo replies received across all station instances.
    pub replies_rx: u64,
    /// Stale-path correction latencies: per mover, activation behind
    /// the new rack → first echo reply (nanoseconds).
    pub corrections: LatencyStats,
    /// Movers whose post-move instance activated.
    pub movers_activated: usize,
    /// Per-epoch Jain fairness over station deliveries.
    pub epochs: ChurnEpochs,
}

/// Full E11 output for one fabric size: one row per table regime.
#[derive(Debug, Clone)]
pub struct E11Result {
    /// Rows in [`TableRegime::ALL`] order.
    pub rows: Vec<E11Row>,
}

enum Fabric {
    Single(Box<BuiltTopology>),
    Sharded(Box<ShardedTopology>),
}

impl Fabric {
    fn run_until(&mut self, until: SimTime) {
        match self {
            Fabric::Single(b) => {
                b.net.run_until(until);
            }
            Fabric::Sharded(s) => {
                s.net.run_until(until);
            }
        }
    }

    fn host_nodes(&self) -> &[NodeId] {
        match self {
            Fabric::Single(b) => &b.host_nodes,
            Fabric::Sharded(s) => &s.host_nodes,
        }
    }

    fn churn_host(&self, node: NodeId) -> &ChurnHost {
        match self {
            Fabric::Single(b) => b.net.device::<ChurnHost>(node),
            Fabric::Sharded(s) => s.net.device::<ChurnHost>(node),
        }
    }

    fn bridge_count(&self) -> usize {
        match self {
            Fabric::Single(b) => b.bridge_nodes.len(),
            Fabric::Sharded(s) => s.bridge_nodes.len(),
        }
    }

    fn bridge_table_stats(&self, ix: BridgeIx) -> TableStats {
        match self {
            Fabric::Single(b) => b.arppath(ix).table_stats(),
            Fabric::Sharded(s) => s.arppath(ix).table_stats(),
        }
    }

    fn bridge_table_capacity(&self, ix: BridgeIx) -> usize {
        match self {
            Fabric::Single(b) => b.arppath(ix).table_slot_capacity(),
            Fabric::Sharded(s) => s.arppath(ix).table_slot_capacity(),
        }
    }

    fn schedule_link(&mut self, link: arppath_netsim::LinkId, at: SimTime, up: bool) {
        match (self, up) {
            (Fabric::Single(b), true) => b.net.schedule_link_up(link, at),
            (Fabric::Single(b), false) => b.net.schedule_link_down(link, at),
            (Fabric::Sharded(s), true) => s.net.schedule_link_up(link, at),
            (Fabric::Sharded(s), false) => s.net.schedule_link_down(link, at),
        }
    }

    fn host_links(&self) -> &[arppath_netsim::LinkId] {
        match self {
            Fabric::Single(b) => &b.host_links,
            Fabric::Sharded(s) => &s.host_links,
        }
    }
}

/// Lay out one E11 scenario: generate the churn script, place it on
/// the rack grid, and attach one [`ChurnHost`] per grid cell (station
/// instances carry the station's MAC/IP — a mover's two instances
/// share them — fillers are inert). Shared by the measurement run, the
/// delivery-trace capture and the differential fuzzer.
pub(crate) fn scenario(
    params: &E11Params,
    regime: TableRegime,
) -> (TopoBuilder, FatTree, ChurnGrid, ChurnWorkload, SimDuration, SimTime) {
    let racks = params.k * params.k / 2;
    let spec = ChurnSpec {
        stations: params.stations,
        initial: params.initial,
        racks,
        horizon: params.horizon,
        slot: SimDuration::millis(1),
        arrival_per_mille: params.arrival_per_mille,
        departure_per_mille: params.departure_per_mille,
        mobility_per_mille: params.mobility_per_mille,
        seed: params.seed,
    };
    let wl = ChurnWorkload::generate(&spec);
    let lives: Vec<StationLife> = wl
        .plans
        .iter()
        .map(|p| StationLife {
            station: p.station,
            home_rack: p.home_rack,
            arrive_at: p.arrive_at,
            move_to: p.move_to,
            depart_at: p.depart_at,
        })
        .collect();
    let grid = ChurnGrid::layout(racks, &lives);

    let mut t = TopoBuilder::new(BridgeKind::ArpPath(regime.config(grid.hosts(), params.stations)));
    let ft = generic::fat_tree_jittered(&mut t, params.k, params.seed.wrapping_add(0xFA7));
    assert_eq!(ft.edge.len(), racks);

    // Every station probes a fixed *anchor* — an initial station that
    // never departs or moves — so the closed-loop reply stream chases
    // each prober across racks (a mover keeps its MAC/IP and its
    // anchor; only its location changes) and correction latency is
    // never confounded by the peer itself winking out mid-episode.
    let anchors: Vec<usize> = wl
        .plans
        .iter()
        .filter(|p| p.station < params.initial && p.depart_at.is_none() && p.move_to.is_none())
        .map(|p| p.station)
        .collect();
    let probe_target = |station: usize| -> usize {
        for i in 0..anchors.len() {
            let a = anchors[(station + i) % anchors.len()];
            if a != station {
                return a;
            }
        }
        // Degenerate script (everyone churns): fall back to the next
        // initial station so the workload still closes the loop.
        (station + 1) % params.initial.max(1)
    };
    let probe_base = SimDuration::millis(1);
    for inst in &grid.instances {
        let device: Box<ChurnHost> = match inst.role {
            GridRole::Home { station } | GridRole::MoveTarget { station } => {
                let target = probe_target(station);
                let id = (station + 1) as u32;
                let cfg = ChurnConfig {
                    target: host_ip((target + 1) as u32),
                    // Stagger activation bursts so one slot's arrivals
                    // do not ARP-flood on a single timestamp.
                    start_at: probe_base + SimDuration::micros(7 * inst.host_index as u64),
                    ident: station as u16,
                    active_at_start: !inst.starts_down,
                    ..ChurnConfig::default()
                };
                Box::new(ChurnHost::new(format!("c{station}"), host_mac(id), host_ip(id), cfg))
            }
            GridRole::Filler => {
                // Distinct address space (02:03::): never active, never
                // learned.
                let id = (inst.host_index + 1) as u32;
                let ip = std::net::Ipv4Addr::new(10, 3, (id >> 8) as u8, (id & 0xff) as u8);
                let cfg = ChurnConfig { active_at_start: false, ..ChurnConfig::default() };
                Box::new(ChurnHost::new(
                    format!("f{}", inst.host_index),
                    arppath_wire::MacAddr::from_index(3, id),
                    ip,
                    cfg,
                ))
            }
        };
        t.host(ft.edge[inst.rack], device);
    }

    let base = SimDuration::millis(BASE_MS);
    let deadline = base + params.horizon + SimDuration::millis(DRAIN_MS);
    (t, ft, grid, wl, base, SimTime(deadline.as_nanos()))
}

fn instantiate(
    params: &E11Params,
    t: TopoBuilder,
    ft: &FatTree,
    grid: &ChurnGrid,
    trace: bool,
) -> Fabric {
    let shards = params.shards.min(ft.k);
    if shards > 1 {
        let partition = Partition::rack_major(ft, grid.slots_per_rack, grid.hosts(), shards);
        Fabric::Sharded(Box::new(t.build_sharded_with(&partition, trace, params.use_matrix)))
    } else {
        Fabric::Single(Box::new(t.build()))
    }
}

/// Schedule the churn script's carrier events on the built fabric.
/// `starts_down` cells go dark at t = 0 (before the settling window);
/// lifecycle instants are offset by `base`. Host access links are
/// intra-shard under rack-major partitions, so this is legal on both
/// engines.
fn apply_churn(fabric: &mut Fabric, grid: &ChurnGrid, base: SimDuration) {
    let links: Vec<_> = fabric.host_links().to_vec();
    for inst in &grid.instances {
        let link = links[inst.host_index];
        if inst.starts_down {
            fabric.schedule_link(link, SimTime(0), false);
        }
        if let Some(at) = inst.up_at {
            fabric.schedule_link(link, SimTime((base + at).as_nanos()), true);
        }
        if let Some(at) = inst.down_at {
            fabric.schedule_link(link, SimTime((base + at).as_nanos()), false);
        }
    }
}

/// Measure one (k, regime) cell.
pub fn run_cell(params: &E11Params, regime: TableRegime) -> E11Row {
    let (t, ft, grid, wl, base, deadline) = scenario(params, regime);
    let mut fabric = instantiate(params, t, &ft, &grid, false);
    apply_churn(&mut fabric, &grid, base);
    fabric.run_until(deadline);

    // Table pressure, aggregated over every bridge.
    let mut table = TableStats::default();
    let mut peak_occupancy = 0usize;
    for b in 0..fabric.bridge_count() {
        let s = fabric.bridge_table_stats(BridgeIx(b));
        table.evictions += s.evictions;
        table.expiry_sweeps += s.expiry_sweeps;
        table.swept_total += s.swept_total;
        table.swept_max = table.swept_max.max(s.swept_max);
        table.occupancy_high_water = table.occupancy_high_water.max(s.occupancy_high_water);
        for (acc, n) in table.victim_age_histogram.iter_mut().zip(s.victim_age_histogram) {
            *acc += n;
        }
        peak_occupancy = peak_occupancy.max(s.occupancy_high_water);
    }
    let table_capacity = fabric.bridge_table_capacity(BridgeIx(0));

    // Station-side observables: probe/reply totals, the per-epoch
    // fairness series, and — from each mover's post-move instance —
    // the stale-path correction latency.
    let mut probes_tx = 0u64;
    let mut replies_rx = 0u64;
    let mut corrections = LatencyStats::new();
    let mut movers_activated = 0usize;
    let mut epochs = ChurnEpochs::new(SimDuration::millis(EPOCH_MS).as_nanos());
    for inst in &grid.instances {
        let host = fabric.churn_host(fabric.host_nodes()[inst.host_index]);
        probes_tx += host.probes_tx;
        replies_rx += host.replies_rx;
        if let Some(station) = grid.station_of(inst.host_index) {
            for &at in &host.reply_times {
                epochs.record(station, at.as_nanos());
            }
        }
        if matches!(inst.role, GridRole::MoveTarget { .. }) && host.activations > 0 {
            movers_activated += 1;
            if let Some(&first) = host.correction_ns.first() {
                corrections.record(first);
            }
        }
    }

    E11Row {
        k: params.k,
        regime: regime.label(),
        hosts: grid.hosts(),
        stations: wl.plans.len(),
        arrivals: wl.arrivals,
        departures: wl.departures,
        moves: wl.moves,
        table_capacity,
        table,
        peak_occupancy,
        probes_tx,
        replies_rx,
        corrections,
        movers_activated,
        epochs,
    }
}

/// The merged, timestamp-sorted delivery trace of one (k, regime) run —
/// the byte-comparable artifact the equivalence suite diffs between the
/// single-threaded and sharded engines, carrier events and all.
pub fn delivery_trace(params: &E11Params, regime: TableRegime) -> Vec<String> {
    let (t, ft, grid, _wl, base, deadline) = scenario(params, regime);
    if params.shards > 1 {
        let mut fabric = instantiate(params, t, &ft, &grid, true);
        apply_churn(&mut fabric, &grid, base);
        fabric.run_until(deadline);
        match fabric {
            Fabric::Sharded(s) => s.net.delivery_trace(),
            Fabric::Single(_) => unreachable!("shards > 1 builds sharded"),
        }
    } else {
        let sink = Arc::new(Mutex::new(DeliveryTracer::new()));
        let mut t = t;
        t.set_tracer(Box::new(sink.clone()));
        let mut fabric = Fabric::Single(Box::new(t.build()));
        apply_churn(&mut fabric, &grid, base);
        fabric.run_until(deadline);
        let records = std::mem::take(&mut sink.lock().unwrap().records);
        DeliveryTracer::render_sorted(records)
    }
}

/// Run all three table regimes on one fabric size.
pub fn run(params: &E11Params) -> E11Result {
    E11Result { rows: TableRegime::ALL.iter().map(|&r| run_cell(params, r)).collect() }
}

/// Median victim age from the histogram, as a human-readable bucket
/// label (`-` when nothing was evicted).
fn victim_age_p50(stats: &TableStats) -> String {
    let total = stats.victims_total();
    if total == 0 {
        return "-".into();
    }
    let mut seen = 0u64;
    for (b, &n) in stats.victim_age_histogram.iter().enumerate() {
        seen += n;
        if seen * 2 >= total {
            return if b == 0 {
                "<1us".into()
            } else if b + 1 == VICTIM_AGE_BUCKETS {
                format!(">={}us", 1u64 << (b - 1))
            } else {
                format!("{}-{}us", 1u64 << (b - 1), 1u64 << b)
            };
        }
    }
    unreachable!("cumulative count reaches the total")
}

/// Render the churn summary across fabric sizes.
pub fn table(results: &[E11Result]) -> Table {
    let mut t = Table::new(
        "E11: station churn — table pressure and stale-path correction per regime",
        &[
            "k",
            "regime",
            "slots",
            "peak occ",
            "evictions",
            "sweeps",
            "max sweep",
            "victim age p50",
            "arr/dep/moves",
            "corr p50 (us)",
            "corr p99 (us)",
            "movers",
            "replies",
            "worst jain",
        ],
    );
    for result in results {
        for r in &result.rows {
            let us = |ns: u64| format!("{:.1}", ns as f64 / 1e3);
            let (p50, p99) = if r.corrections.is_empty() {
                ("-".into(), "-".into())
            } else {
                (us(r.corrections.percentile(50.0)), us(r.corrections.percentile(99.0)))
            };
            t.row(&[
                r.k.to_string(),
                r.regime.to_string(),
                r.table_capacity.to_string(),
                r.peak_occupancy.to_string(),
                r.table.evictions.to_string(),
                r.table.expiry_sweeps.to_string(),
                r.table.swept_max.to_string(),
                victim_age_p50(&r.table),
                format!("{}/{}/{}", r.arrivals, r.departures, r.moves),
                p50,
                p99,
                format!("{}/{}", r.corrections.count(), r.moves),
                r.replies_rx.to_string(),
                format!("{:.3}", r.epochs.worst_jain()),
            ]);
        }
    }
    t
}

/// Render the per-epoch fairness series of one row (the churn-storm
/// dip-and-recovery shape).
pub fn epoch_table(row: &E11Row) -> Table {
    let mut t = Table::new(
        format!("E11: per-epoch delivery fairness, k={} {}", row.k, row.regime),
        &["epoch", "start (ms)", "deliveries", "stations", "jain"],
    );
    for e in row.epochs.rows() {
        t.row(&[
            e.index.to_string(),
            format!("{:.0}", e.start_ns as f64 / 1e6),
            e.deliveries.to_string(),
            e.stations.to_string(),
            format!("{:.3}", e.jain),
        ]);
    }
    t
}

/// The tentpole pressure gate, per fabric size:
///
/// * **undersized** tables evict (the storm actually happened) and
///   their occupancy high-water mark never exceeds capacity;
/// * **headroom** tables evict **nothing** — churn does not break
///   PR 8's zero-eviction contract for autosized tables;
/// * **oversized** tables evict nothing either.
pub fn verify_pressure(results: &[E11Result]) -> bool {
    results.iter().all(|result| {
        result.rows.iter().all(|r| {
            let occupancy_ok = r.peak_occupancy <= r.table_capacity;
            let evictions_ok = match r.regime {
                "undersized" => r.table.evictions > 0,
                _ => r.table.evictions == 0,
            };
            occupancy_ok && evictions_ok
        })
    })
}

/// The correction gate, per fabric size and regime: whenever the
/// script moves stations, post-move instances activate and at least
/// one stale-path correction round trip completes — and the probe loop
/// as a whole stays alive (replies flow in every regime).
pub fn verify_correction(results: &[E11Result]) -> bool {
    results.iter().all(|result| {
        result.rows.iter().all(|r| {
            let moved = r.moves > 0;
            let corrected = !moved || (r.movers_activated > 0 && r.corrections.count() > 0);
            corrected && r.replies_rx > 0
        })
    })
}
