//! **E6 — §2.2 "Scalability" / ref \[5\]: ARP-proxy broadcast
//! suppression.**
//!
//! "ARP broadcast traffic can be reduced dramatically by implementing
//! ARP Proxy function inside the switches." Many clients keep
//! re-resolving the same popular servers (host ARP caches expire on
//! the order of a minute; switch caches and confirmed paths live much
//! longer). Once the fabric is warm, proxy-enabled bridges answer
//! those re-resolutions from their caches and the flood never happens.
//! The workload therefore probes in waves spaced past the host ARP
//! timeout: wave 1 is cold everywhere; later waves are where the proxy
//! earns its keep.

use super::{host_ip, host_mac};
use arppath::ArpPathConfig;
use arppath_host::{PingConfig, PingHost};
use arppath_metrics::Table;
use arppath_netsim::{SimDuration, SimTime};
use arppath_topo::{generic, BridgeIx, BridgeKind, TopoBuilder};

/// Parameters of one E6 run.
#[derive(Debug, Clone, Copy)]
pub struct E6Params {
    /// Grid side for the fabric.
    pub side: usize,
    /// Number of client hosts (spread round-robin over the fabric).
    pub clients: u32,
    /// Number of popular server hosts.
    pub servers: u32,
}

impl Default for E6Params {
    fn default() -> Self {
        E6Params { side: 3, clients: 48, servers: 2 }
    }
}

/// One configuration's broadcast accounting.
#[derive(Debug, Clone)]
pub struct E6Row {
    /// `"proxy off"` / `"proxy on"`.
    pub config: &'static str,
    /// ARP requests the hosts emitted.
    pub arp_requests: u64,
    /// ARP Request flood events across all bridges (each counts one
    /// bridge flooding one accepted request copy onward).
    pub request_floods: u64,
    /// Requests answered by a proxy without flooding.
    pub proxy_replies: u64,
    /// ARP Requests that reached the server hosts themselves (the
    /// server-side interrupt load EtherProxy exists to cut).
    pub server_arp_load: u64,
    /// Resolutions that succeeded.
    pub resolved: u64,
}

/// Full E6 output.
#[derive(Debug, Clone)]
pub struct E6Result {
    /// Proxy-off then proxy-on.
    pub rows: Vec<E6Row>,
}

fn run_one(proxy: bool, params: &E6Params) -> E6Row {
    let cfg = if proxy { ArpPathConfig::default().with_proxy() } else { ArpPathConfig::default() };
    let mut t = TopoBuilder::new(BridgeKind::ArpPath(cfg));
    let bridges = generic::grid(&mut t, params.side, params.side);
    let server_bridge: Vec<BridgeIx> =
        (0..params.servers).map(|s| bridges[s as usize % bridges.len()]).collect();

    // Servers: pure responders, attached first so their paths get
    // established by the earliest clients and stay warm.
    let mut server_hosts = Vec::new();
    for s in 0..params.servers {
        let id = 1000 + s;
        let host = PingHost::new(
            format!("srv{s}"),
            host_mac(id),
            host_ip(id),
            id as u16,
            PingConfig::default(),
        );
        server_hosts.push(t.host(server_bridge[s as usize], Box::new(host)));
    }
    // Clients ping a server (Zipf-flat: round-robin over the few
    // servers — every server is popular), in three waves spaced past
    // the host ARP timeout, so waves 2 and 3 are re-resolutions over a
    // warm fabric. Host ARP caches live 10 s; probes fire every 11 s.
    let mut client_hosts = Vec::new();
    for c in 0..params.clients {
        let id = 1 + c;
        let target = 1000 + (c % params.servers);
        let bridge = bridges[(c as usize * 7 + 3) % bridges.len()];
        let host = PingHost::new(
            format!("cli{c}"),
            host_mac(id),
            host_ip(id),
            id as u16,
            PingConfig {
                target: host_ip(target),
                start_at: SimDuration::millis(20 + 10 * c as u64),
                interval: SimDuration::millis(11_000),
                count: 3,
                arp_timeout: SimDuration::secs(10),
                ..Default::default()
            },
        );
        client_hosts.push(t.host(bridge, Box::new(host)));
    }
    let mut built = t.build();
    built.net.run_until(SimTime(SimDuration::secs(40).as_nanos()));

    let request_floods: u64 = (0..bridges.len())
        .map(|i| built.arppath(BridgeIx(i)).ap_counters().arp_request_floods)
        .sum();
    let mut arp_requests = 0;
    let mut resolved = 0;
    for &h in &client_hosts {
        let host = built.net.device::<PingHost>(built.host_nodes[h]);
        arp_requests += host.stack.counters().arp_requests_tx;
        resolved += host.stack.counters().arp_resolved;
    }
    let server_arp_load: u64 = server_hosts
        .iter()
        .map(|&h| built.net.device::<PingHost>(built.host_nodes[h]).stack.counters().arp_replies_tx)
        .sum();
    let proxy_replies: u64 =
        (0..bridges.len()).map(|i| built.arppath(BridgeIx(i)).ap_counters().proxy_replies).sum();
    E6Row {
        config: if proxy { "proxy on" } else { "proxy off" },
        arp_requests,
        request_floods,
        proxy_replies,
        server_arp_load,
        resolved,
    }
}

/// Run both configurations.
pub fn run(params: &E6Params) -> E6Result {
    E6Result { rows: vec![run_one(false, params), run_one(true, params)] }
}

/// Render the paper-style table.
pub fn table(result: &E6Result) -> Table {
    let mut t = Table::new(
        "E6 (§2.2, ref [5]): in-switch ARP proxy broadcast suppression",
        &[
            "config",
            "client ARP reqs",
            "request flood events",
            "proxy replies",
            "server ARP load",
            "resolved",
        ],
    );
    for r in &result.rows {
        t.row(&[
            r.config.to_string(),
            r.arp_requests.to_string(),
            r.request_floods.to_string(),
            r.proxy_replies.to_string(),
            r.server_arp_load.to_string(),
            r.resolved.to_string(),
        ]);
    }
    t
}

/// Suppression holds when proxies answered requests, the servers saw
/// less ARP interrupt load, fabric flooding did not grow, and every
/// client still resolved.
pub fn verify_suppression(result: &E6Result) -> bool {
    let off = &result.rows[0];
    let on = &result.rows[1];
    on.proxy_replies > 0
        && on.server_arp_load < off.server_arp_load
        && on.request_floods <= off.request_floods
        && on.resolved == off.resolved
}
