//! **E8 — datacenter-scale fat-tree load balance (All-Path direction,
//! arXiv:1703.08744).**
//!
//! The paper's §2.2 claims path diversity; the All-Path scalability
//! study shows the behaviour only becomes interesting at datacenter
//! scale, on multipath fabrics with many concurrent flows. This
//! experiment stitches a rack-major host array onto a k-ary fat-tree,
//! drives a seeded [`TrafficPattern`] (fixed-point-free permutation, or
//! an incast hotspot) through plain ARP + UDP, and measures what the
//! parallel core layer did with it:
//!
//! * per-core-link byte loads → Jain fairness + a utilization
//!   histogram (shape, not just a scalar);
//! * path diversity → which core switch each host pair's learned path
//!   crosses, how many distinct cores are in use, and how evenly pairs
//!   spread over them;
//! * delivery — every datagram sent must arrive (the fabric is
//!   loss-free at these rates; a shortfall means paths broke).
//!
//! Everything is a pure function of the parameter struct: same seed ⇒
//! identical tables, which `tests/fat_tree_workload.rs` pins.

use super::{host_ip, host_mac};
use arppath::{ArpPathBridge, ArpPathConfig};
use arppath_host::{pairings, TrafficConfig, TrafficHost, TrafficPattern};
use arppath_metrics::{jain_index, DiversityCounter, Table, UtilizationHistogram};
use arppath_netsim::{
    DeliveryTracer, Dir, DirStats, Endpoint, LinkId, NodeId, PortNo, ShardStats, SimDuration,
    SimTime,
};
use arppath_topo::{
    generic, BridgeIx, BridgeKind, BuiltTopology, FatTree, Partition, ShardedTopology, TopoBuilder,
};
use arppath_wire::MacAddr;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Parameters of one E8 run (one fabric size, both patterns).
#[derive(Debug, Clone, Copy)]
pub struct E8Params {
    /// Fat-tree arity (even): `5k²/4` switches, `k³/2` links.
    pub k: usize,
    /// Hosts attached per edge switch (the canonical tree uses `k/2`;
    /// larger values over-subscribe the fabric).
    pub hosts_per_edge: usize,
    /// UDP datagrams each host sends to its assigned peer.
    pub datagrams: u64,
    /// UDP payload bytes (big enough that data dwarfs control chatter
    /// in the per-link byte loads).
    pub payload_len: usize,
    /// Workload seed: drives both patterns' pairings.
    pub seed: u64,
    /// Hot receivers for the hotspot pattern (clamped to the host
    /// count).
    pub hot_receivers: usize,
    /// Worker threads for the simulation. `1` runs the classic
    /// single-threaded engine; `≥ 2` runs
    /// [`arppath_netsim::ShardedNetwork`] under the rack-major
    /// partition ([`Partition::rack_major`]), clamped to the fabric's
    /// pod count `k` — same scenario, same results
    /// (`tests/sharded_equivalence.rs` pins trace identity),
    /// different wall clock.
    pub shards: usize,
}

impl Default for E8Params {
    fn default() -> Self {
        E8Params {
            k: 4,
            hosts_per_edge: 4,
            datagrams: 10,
            payload_len: 700,
            seed: 0xE8,
            hot_receivers: 4,
            shards: 1,
        }
    }
}

/// One pattern's load-balance metrics on one fabric.
#[derive(Debug, Clone)]
pub struct E8Row {
    /// `"permutation"` or `"hotspot"`.
    pub pattern: &'static str,
    /// Fat-tree arity.
    pub k: usize,
    /// Hosts attached.
    pub hosts: usize,
    /// Aggregation↔core links in the fabric.
    pub core_links: usize,
    /// Jain fairness of per-core-link byte loads.
    pub jain_core: f64,
    /// Fraction of core links carrying a meaningful share (> 5 % of
    /// the mean core-link load).
    pub core_links_used: f64,
    /// Distinct core switches crossed by at least one learned path.
    pub distinct_cores: usize,
    /// Core switches in the fabric (`(k/2)²`).
    pub total_cores: usize,
    /// Jain fairness of host pairs per core switch (how evenly the
    /// pair→core assignment spread).
    pub pairs_per_core_jain: f64,
    /// Host pairs whose learned path crosses the core (inter-pod
    /// pairs; intra-pod traffic never needs to).
    pub core_crossing_pairs: usize,
    /// Datagrams delivered fabric-wide.
    pub delivered: u64,
    /// Datagrams sent fabric-wide.
    pub sent: u64,
    /// Core-link utilization histogram (load relative to mean).
    pub histogram: UtilizationHistogram,
}

/// Full E8 output for one fabric size.
#[derive(Debug, Clone)]
pub struct E8Result {
    /// Permutation row then hotspot row.
    pub rows: Vec<E8Row>,
    /// Per-shard utilization report (sharded runs only; from the
    /// permutation pattern's run).
    pub shard_summary: Option<Table>,
}

/// The fabric under measurement: the same scenario instantiated on
/// either engine, behind one accessor surface so every metric below is
/// computed identically for single-threaded and sharded runs.
enum Fabric {
    Single(Box<BuiltTopology>),
    Sharded(Box<ShardedTopology>),
}

impl Fabric {
    fn run_until(&mut self, until: SimTime) {
        match self {
            Fabric::Single(b) => b.net.run_until(until),
            Fabric::Sharded(s) => s.net.run_until(until),
        }
    }

    fn now(&self) -> SimTime {
        match self {
            Fabric::Single(b) => b.net.now(),
            Fabric::Sharded(s) => s.net.now(),
        }
    }

    fn bridge_nodes(&self) -> &[NodeId] {
        match self {
            Fabric::Single(b) => &b.bridge_nodes,
            Fabric::Sharded(s) => &s.bridge_nodes,
        }
    }

    fn host_nodes(&self) -> &[NodeId] {
        match self {
            Fabric::Single(b) => &b.host_nodes,
            Fabric::Sharded(s) => &s.host_nodes,
        }
    }

    fn bridge_links(&self) -> &[LinkId] {
        match self {
            Fabric::Single(b) => &b.bridge_links,
            Fabric::Sharded(s) => &s.bridge_links,
        }
    }

    fn link_endpoints(&self, l: LinkId) -> (Endpoint, Endpoint) {
        match self {
            Fabric::Single(b) => {
                let lk = b.net.link(l);
                (lk.a, lk.b)
            }
            Fabric::Sharded(s) => s.net.link_endpoints(l),
        }
    }

    fn link_stats(&self, l: LinkId, dir: Dir) -> DirStats {
        match self {
            Fabric::Single(b) => b.net.link(l).stats(dir),
            Fabric::Sharded(s) => s.net.link_stats(l, dir),
        }
    }

    fn arppath(&self, ix: BridgeIx) -> &ArpPathBridge {
        match self {
            Fabric::Single(b) => b.arppath(ix),
            Fabric::Sharded(s) => s.arppath(ix),
        }
    }

    fn traffic_host(&self, node: NodeId) -> &TrafficHost {
        match self {
            Fabric::Single(b) => b.net.device::<TrafficHost>(node),
            Fabric::Sharded(s) => s.net.device::<TrafficHost>(node),
        }
    }
}

/// Walks learned unicast paths over one built topology. The fabric
/// adjacency maps are built once at construction, so walking every
/// host pair (1024 at k=8) costs hops, not map rebuilds.
pub struct PathWalker<'a> {
    /// ARP-Path logic per bridge, by [`BridgeIx`].
    bridges: Vec<&'a ArpPathBridge>,
    /// (bridge ix, port) → peer bridge ix, over fabric links only.
    peer: BTreeMap<(usize, PortNo), usize>,
}

impl<'a> PathWalker<'a> {
    /// Index the fabric adjacency of `built`.
    pub fn new(built: &'a BuiltTopology) -> Self {
        Self::from_parts(
            built.bridge_nodes.len(),
            &built.bridge_nodes,
            built.bridge_links.iter().map(|&l| {
                let lk = built.net.link(l);
                (lk.a, lk.b)
            }),
            |ix| built.arppath(ix),
        )
    }

    /// Index the fabric adjacency of a sharded instantiation (E9 walks
    /// learned paths on both engines through this).
    pub fn new_sharded(topo: &'a ShardedTopology) -> Self {
        Self::from_parts(
            topo.bridge_nodes.len(),
            &topo.bridge_nodes,
            topo.bridge_links.iter().map(|&l| topo.net.link_endpoints(l)),
            |ix| topo.arppath(ix),
        )
    }

    /// Index the fabric adjacency of either engine's instantiation.
    fn from_fabric(fabric: &'a Fabric) -> Self {
        Self::from_parts(
            fabric.bridge_nodes().len(),
            fabric.bridge_nodes(),
            fabric.bridge_links().iter().map(|&l| fabric.link_endpoints(l)),
            |ix| fabric.arppath(ix),
        )
    }

    fn from_parts(
        n: usize,
        bridge_nodes: &[NodeId],
        links: impl Iterator<Item = (Endpoint, Endpoint)>,
        arppath: impl Fn(BridgeIx) -> &'a ArpPathBridge,
    ) -> Self {
        let ix_of: BTreeMap<NodeId, usize> =
            bridge_nodes.iter().enumerate().map(|(i, &node)| (node, i)).collect();
        let mut peer = BTreeMap::new();
        for (a, b) in links {
            peer.insert((ix_of[&a.node], a.port), ix_of[&b.node]);
            peer.insert((ix_of[&b.node], b.port), ix_of[&a.node]);
        }
        let bridges = (0..n).map(|i| arppath(BridgeIx(i))).collect();
        PathWalker { bridges, peer }
    }

    /// Walk the learned unicast path from `from` toward `target`,
    /// returning the bridges visited in order (starting with `from`).
    /// Stops when a bridge has no entry for `target` or the next hop
    /// is the host itself.
    pub fn walk(&self, from: BridgeIx, target: MacAddr, now: SimTime) -> Vec<BridgeIx> {
        let mut visited = vec![from];
        let mut cur = from;
        for _ in 0..self.bridges.len() {
            let Some(e) = self.bridges[cur.0].entry_of(target, now) else { break };
            let Some(&next) = self.peer.get(&(cur.0, e.port)) else {
                break; // the entry points at a host port: destination reached
            };
            let next_ix = BridgeIx(next);
            if visited.contains(&next_ix) {
                break; // defensive: a loop here would be a protocol bug
            }
            visited.push(next_ix);
            cur = next_ix;
        }
        visited
    }
}

/// One-shot convenience over [`PathWalker`] — fine for a single pair;
/// batch callers should construct the walker once.
pub fn walk_path(
    built: &BuiltTopology,
    from: BridgeIx,
    target: MacAddr,
    now: SimTime,
) -> Vec<BridgeIx> {
    PathWalker::new(built).walk(from, target, now)
}

/// Lay out one E8 scenario: the jittered fabric, the seeded workload's
/// hosts, and the run deadline. Shared verbatim by the single-threaded
/// path, the sharded path and the delivery-trace capture, so all three
/// simulate the *same* network.
fn scenario(
    params: &E8Params,
    pattern: TrafficPattern,
) -> (TopoBuilder, FatTree, Vec<usize>, SimTime) {
    // The bridges' d-left path tables size themselves: TopoBuilder
    // derives the geometry from the declared host count at build time
    // (a core bridge learns every station — the NetFPGA analogue of
    // sizing BRAM for the target network).
    let mut t = TopoBuilder::new(BridgeKind::ArpPath(ArpPathConfig::default()));
    // Jittered fabric delays: on a perfectly symmetric tree every race
    // resolves by the deterministic tie-break and all flows funnel
    // onto one core. The jitter seed derives from the workload seed so
    // one E8Params value pins the whole scenario. (The jitter also
    // sets the sharded engine's lookahead: ≥ 1 µs per cut link.)
    let ft = generic::fat_tree_jittered(&mut t, params.k, params.seed.wrapping_add(0xFA7));
    let n = ft.host_capacity(params.hosts_per_edge);
    let pairs = pairings(n, pattern, params.seed);

    // ARP-Path needs its hellos settled so bridge ports classify as
    // core before host traffic arrives (same warmup as E5's ARP rows).
    let warmup = SimDuration::millis(100);
    // Stagger first sends so thousands of ARP floods don't detonate on
    // one timestamp; deterministic in the host index.
    let stagger = SimDuration::micros(137);
    let interval = SimDuration::millis(5);
    for (i, &dst) in pairs.iter().enumerate() {
        let id = (i + 1) as u32;
        let cfg = TrafficConfig {
            target: host_ip((dst + 1) as u32),
            start_at: warmup + stagger.times(i as u64),
            interval,
            count: params.datagrams,
            payload_len: params.payload_len,
            ..Default::default()
        };
        let host = TrafficHost::new(format!("h{id}"), host_mac(id), host_ip(id), cfg);
        t.host(ft.edge_of_host(i, params.hosts_per_edge), Box::new(host));
    }
    let deadline = warmup
        + stagger.times(n as u64)
        + interval.times(params.datagrams)
        + SimDuration::millis(200);
    (t, ft, pairs, SimTime(deadline.as_nanos()))
}

/// Instantiate a prepared scenario on the engine `params.shards` asks
/// for (rack-major partition when sharded). The worker count is
/// clamped to the fabric's pod count `k` — rack-major assigns whole
/// pods, so a k=4 fabric can use at most 4 workers even when the
/// sweep's larger fabrics use more (the per-shard table reports the
/// count actually used).
fn instantiate(params: &E8Params, t: TopoBuilder, ft: &FatTree, trace: bool) -> Fabric {
    let shards = params.shards.min(ft.k);
    if shards > 1 {
        let hosts = ft.host_capacity(params.hosts_per_edge);
        let partition = Partition::rack_major(ft, params.hosts_per_edge, hosts, shards);
        Fabric::Sharded(Box::new(t.build_sharded(&partition, trace)))
    } else {
        Fabric::Single(Box::new(t.build()))
    }
}

fn run_pattern(
    params: &E8Params,
    pattern: TrafficPattern,
    label: &'static str,
) -> (E8Row, Option<Table>) {
    let (t, ft, pairs, deadline) = scenario(params, pattern);
    let n = pairs.len();
    let mut fabric = instantiate(params, t, &ft, false);
    fabric.run_until(deadline);
    let now = fabric.now();

    // Core links: exactly one endpoint on a core switch.
    let core_nodes: Vec<NodeId> = ft.core.iter().map(|&c| fabric.bridge_nodes()[c.0]).collect();
    let core_loads: Vec<f64> = fabric
        .bridge_links()
        .iter()
        .filter_map(|&l| {
            let (a, b) = fabric.link_endpoints(l);
            let is_core = core_nodes.contains(&a.node) || core_nodes.contains(&b.node);
            is_core.then(|| {
                (fabric.link_stats(l, Dir::AtoB).tx_bytes
                    + fabric.link_stats(l, Dir::BtoA).tx_bytes) as f64
            })
        })
        .collect();
    let mean = core_loads.iter().sum::<f64>() / core_loads.len().max(1) as f64;
    let used = core_loads.iter().filter(|&&x| x > mean * 0.05).count() as f64
        / core_loads.len().max(1) as f64;

    // Path diversity: which core each pair's learned path crosses.
    let mut diversity = DiversityCounter::new();
    let walker = PathWalker::from_fabric(&fabric);
    for (i, &dst) in pairs.iter().enumerate() {
        let from = ft.edge_of_host(i, params.hosts_per_edge);
        let path = walker.walk(from, host_mac((dst + 1) as u32), now);
        for b in &path {
            if ft.is_core(*b) {
                diversity.record(i as u64, b.0 as u64);
            }
        }
    }

    let mut sent = 0u64;
    let mut delivered = 0u64;
    for &h in fabric.host_nodes() {
        let host = fabric.traffic_host(h);
        sent += host.sent();
        delivered += host.rx_datagrams;
    }

    let shard_summary = match &fabric {
        Fabric::Single(_) => None,
        Fabric::Sharded(s) => Some(shard_table(params.k, &s.net.shard_stats(), s.net.lookahead())),
    };

    let row = E8Row {
        pattern: label,
        k: params.k,
        hosts: n,
        core_links: core_loads.len(),
        jain_core: jain_index(&core_loads),
        core_links_used: used,
        distinct_cores: diversity.distinct_items(),
        total_cores: ft.core.len(),
        pairs_per_core_jain: jain_index(&diversity.keys_per_item()),
        core_crossing_pairs: diversity.keys(),
        delivered,
        sent,
        histogram: UtilizationHistogram::from_loads(&core_loads),
    };
    (row, shard_summary)
}

/// Render the per-shard utilization report of a sharded run: how many
/// devices and events each worker carried, how much of its delivery
/// work crossed shard boundaries, and each shard's share of the total
/// event load (1/N everywhere = a perfectly balanced partition).
fn shard_table(k: usize, stats: &[ShardStats], lookahead: Option<SimDuration>) -> Table {
    let total_events: u64 = stats.iter().map(|s| s.events).sum();
    let la = lookahead.map_or("∞".to_string(), |l| l.to_string());
    let mut t = Table::new(
        format!(
            "E8 per-shard utilization, k={k} fat-tree ({} shards, lookahead {la})",
            stats.len()
        ),
        &["shard", "devices", "events", "event share", "delivered", "cross out", "cross in"],
    );
    for s in stats {
        t.row(&[
            s.shard.to_string(),
            s.devices.to_string(),
            s.events.to_string(),
            format!("{:.0}%", s.events as f64 / total_events.max(1) as f64 * 100.0),
            s.frames_delivered.to_string(),
            s.cross_out.to_string(),
            s.cross_in.to_string(),
        ]);
    }
    t
}

/// The merged, timestamp-sorted delivery trace of one pattern's run —
/// the canonical byte-comparable artifact. A sharded run
/// (`params.shards ≥ 2`) and a single-threaded run (`shards = 1`) of
/// the same parameters must render **identical** lines; CI diffs
/// exactly this (`repro -- e8 --quick --trace-out`).
pub fn delivery_trace(params: &E8Params, pattern: TrafficPattern) -> Vec<String> {
    let (t, ft, _pairs, deadline) = scenario(params, pattern);
    if params.shards > 1 {
        let mut fabric = match instantiate(params, t, &ft, true) {
            Fabric::Sharded(s) => s,
            Fabric::Single(_) => unreachable!("shards > 1 builds sharded"),
        };
        fabric.net.run_until(deadline);
        fabric.net.delivery_trace()
    } else {
        let sink = Arc::new(Mutex::new(DeliveryTracer::new()));
        let mut t = t;
        t.set_tracer(Box::new(sink.clone()));
        let mut built = t.build();
        built.net.run_until(deadline);
        let records = std::mem::take(&mut sink.lock().unwrap().records);
        DeliveryTracer::render_sorted(records)
    }
}

/// Run both patterns on one fabric size.
pub fn run(params: &E8Params) -> E8Result {
    let (permutation, shard_summary) =
        run_pattern(params, TrafficPattern::Permutation, "permutation");
    let (hotspot, _) = run_pattern(
        params,
        TrafficPattern::Hotspot { hot_receivers: params.hot_receivers },
        "hotspot",
    );
    E8Result { rows: vec![permutation, hotspot], shard_summary }
}

/// Render the load-distribution summary over any number of runs (one
/// per fabric size) — the table the All-Path study's load-balance
/// figures are compared against.
pub fn table(results: &[E8Result]) -> Table {
    let mut t = Table::new(
        "E8 (All-Path scalability): fat-tree core load balance",
        &[
            "k",
            "pattern",
            "hosts",
            "core links",
            "jain (core load)",
            "core links used",
            "cores used",
            "jain (pairs/core)",
            "delivered",
        ],
    );
    for result in results {
        for r in &result.rows {
            t.row(&[
                r.k.to_string(),
                r.pattern.to_string(),
                r.hosts.to_string(),
                r.core_links.to_string(),
                format!("{:.3}", r.jain_core),
                format!("{:.0}%", r.core_links_used * 100.0),
                format!("{}/{}", r.distinct_cores, r.total_cores),
                format!("{:.3}", r.pairs_per_core_jain),
                format!("{}/{}", r.delivered, r.sent),
            ]);
        }
    }
    t
}

/// Render the per-core-link utilization histogram for one fabric size
/// (buckets of load relative to the mean core-link load; pattern
/// columns side by side).
pub fn utilization_table(result: &E8Result) -> Table {
    let k = result.rows.first().map(|r| r.k).unwrap_or(0);
    let series: Vec<(&str, &UtilizationHistogram)> =
        result.rows.iter().map(|r| (r.pattern, &r.histogram)).collect();
    UtilizationHistogram::table(
        &format!("E8: core-link utilization histogram, k={k} fat-tree"),
        &series,
    )
}

/// The headline claim: under the permutation workload the race spreads
/// inter-pod pairs across a **majority** of the parallel core switches
/// (no spanning-tree-style funnelling onto one), core-load fairness
/// stays above 0.5, and nothing is lost. Not *every* core need win:
/// with fixed per-link jitter a core that is never on any pair's
/// fastest path stays idle, which is physically faithful.
pub fn verify_spread(result: &E8Result) -> bool {
    result
        .rows
        .iter()
        .filter(|r| r.pattern == "permutation")
        .all(|r| r.distinct_cores * 2 > r.total_cores && r.jain_core > 0.5 && r.delivered == r.sent)
}
