//! **E8 — datacenter-scale fat-tree load balance (All-Path direction,
//! arXiv:1703.08744).**
//!
//! The paper's §2.2 claims path diversity; the All-Path scalability
//! study shows the behaviour only becomes interesting at datacenter
//! scale, on multipath fabrics with many concurrent flows. This
//! experiment stitches a rack-major host array onto a k-ary fat-tree,
//! drives a seeded [`TrafficPattern`] (fixed-point-free permutation, or
//! an incast hotspot) through plain ARP + UDP, and measures what the
//! parallel core layer did with it:
//!
//! * per-core-link byte loads → Jain fairness + a utilization
//!   histogram (shape, not just a scalar);
//! * path diversity → which core switch each host pair's learned path
//!   crosses, how many distinct cores are in use, and how evenly pairs
//!   spread over them;
//! * delivery — every datagram sent must arrive (the fabric is
//!   loss-free at these rates; a shortfall means paths broke).
//!
//! Everything is a pure function of the parameter struct: same seed ⇒
//! identical tables, which `tests/fat_tree_workload.rs` pins.

use super::{host_ip, host_mac};
use arppath::ArpPathConfig;
use arppath_host::{pairings, TrafficConfig, TrafficHost, TrafficPattern};
use arppath_metrics::{jain_index, DiversityCounter, Table, UtilizationHistogram};
use arppath_netsim::{NodeId, PortNo, SimDuration, SimTime};
use arppath_topo::{generic, BridgeIx, BridgeKind, BuiltTopology, TopoBuilder};
use arppath_wire::MacAddr;
use std::collections::BTreeMap;

/// Parameters of one E8 run (one fabric size, both patterns).
#[derive(Debug, Clone, Copy)]
pub struct E8Params {
    /// Fat-tree arity (even): `5k²/4` switches, `k³/2` links.
    pub k: usize,
    /// Hosts attached per edge switch (the canonical tree uses `k/2`;
    /// larger values over-subscribe the fabric).
    pub hosts_per_edge: usize,
    /// UDP datagrams each host sends to its assigned peer.
    pub datagrams: u64,
    /// UDP payload bytes (big enough that data dwarfs control chatter
    /// in the per-link byte loads).
    pub payload_len: usize,
    /// Workload seed: drives both patterns' pairings.
    pub seed: u64,
    /// Hot receivers for the hotspot pattern (clamped to the host
    /// count).
    pub hot_receivers: usize,
}

impl Default for E8Params {
    fn default() -> Self {
        E8Params {
            k: 4,
            hosts_per_edge: 4,
            datagrams: 10,
            payload_len: 700,
            seed: 0xE8,
            hot_receivers: 4,
        }
    }
}

/// One pattern's load-balance metrics on one fabric.
#[derive(Debug, Clone)]
pub struct E8Row {
    /// `"permutation"` or `"hotspot"`.
    pub pattern: &'static str,
    /// Fat-tree arity.
    pub k: usize,
    /// Hosts attached.
    pub hosts: usize,
    /// Aggregation↔core links in the fabric.
    pub core_links: usize,
    /// Jain fairness of per-core-link byte loads.
    pub jain_core: f64,
    /// Fraction of core links carrying a meaningful share (> 5 % of
    /// the mean core-link load).
    pub core_links_used: f64,
    /// Distinct core switches crossed by at least one learned path.
    pub distinct_cores: usize,
    /// Core switches in the fabric (`(k/2)²`).
    pub total_cores: usize,
    /// Jain fairness of host pairs per core switch (how evenly the
    /// pair→core assignment spread).
    pub pairs_per_core_jain: f64,
    /// Host pairs whose learned path crosses the core (inter-pod
    /// pairs; intra-pod traffic never needs to).
    pub core_crossing_pairs: usize,
    /// Datagrams delivered fabric-wide.
    pub delivered: u64,
    /// Datagrams sent fabric-wide.
    pub sent: u64,
    /// Core-link utilization histogram (load relative to mean).
    pub histogram: UtilizationHistogram,
}

/// Full E8 output for one fabric size.
#[derive(Debug, Clone)]
pub struct E8Result {
    /// Permutation row then hotspot row.
    pub rows: Vec<E8Row>,
}

/// Walks learned unicast paths over one built topology. The fabric
/// adjacency maps are built once at construction, so walking every
/// host pair (1024 at k=8) costs hops, not map rebuilds.
pub struct PathWalker<'a> {
    built: &'a BuiltTopology,
    /// (node, port) → peer node, over bridge-to-bridge links only.
    peer: BTreeMap<(NodeId, PortNo), NodeId>,
    ix_of: BTreeMap<NodeId, usize>,
}

impl<'a> PathWalker<'a> {
    /// Index the fabric adjacency of `built`.
    pub fn new(built: &'a BuiltTopology) -> Self {
        let mut peer = BTreeMap::new();
        for &l in &built.bridge_links {
            let lk = built.net.link(l);
            peer.insert((lk.a.node, lk.a.port), lk.b.node);
            peer.insert((lk.b.node, lk.b.port), lk.a.node);
        }
        let ix_of = built.bridge_nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        PathWalker { built, peer, ix_of }
    }

    /// Walk the learned unicast path from `from` toward `target`,
    /// returning the bridges visited in order (starting with `from`).
    /// Stops when a bridge has no entry for `target` or the next hop
    /// is the host itself.
    pub fn walk(&self, from: BridgeIx, target: MacAddr, now: SimTime) -> Vec<BridgeIx> {
        let mut visited = vec![from];
        let mut cur = from;
        for _ in 0..self.built.bridge_nodes.len() {
            let Some(e) = self.built.arppath(cur).entry_of(target, now) else { break };
            let Some(&next) = self.peer.get(&(self.built.bridge_nodes[cur.0], e.port)) else {
                break; // the entry points at a host port: destination reached
            };
            let next_ix = BridgeIx(self.ix_of[&next]);
            if visited.contains(&next_ix) {
                break; // defensive: a loop here would be a protocol bug
            }
            visited.push(next_ix);
            cur = next_ix;
        }
        visited
    }
}

/// One-shot convenience over [`PathWalker`] — fine for a single pair;
/// batch callers should construct the walker once.
pub fn walk_path(
    built: &BuiltTopology,
    from: BridgeIx,
    target: MacAddr,
    now: SimTime,
) -> Vec<BridgeIx> {
    PathWalker::new(built).walk(from, target, now)
}

fn run_pattern(params: &E8Params, pattern: TrafficPattern, label: &'static str) -> E8Row {
    let mut t = TopoBuilder::new(BridgeKind::ArpPath(ArpPathConfig::default()));
    // Jittered fabric delays: on a perfectly symmetric tree every race
    // resolves by the deterministic tie-break and all flows funnel
    // onto one core. The jitter seed derives from the workload seed so
    // one E8Params value pins the whole scenario.
    let ft = generic::fat_tree_jittered(&mut t, params.k, params.seed.wrapping_add(0xFA7));
    let n = ft.host_capacity(params.hosts_per_edge);
    let pairs = pairings(n, pattern, params.seed);

    // ARP-Path needs its hellos settled so bridge ports classify as
    // core before host traffic arrives (same warmup as E5's ARP rows).
    let warmup = SimDuration::millis(100);
    // Stagger first sends so thousands of ARP floods don't detonate on
    // one timestamp; deterministic in the host index.
    let stagger = SimDuration::micros(137);
    let interval = SimDuration::millis(5);
    for (i, &dst) in pairs.iter().enumerate() {
        let id = (i + 1) as u32;
        let cfg = TrafficConfig {
            target: host_ip((dst + 1) as u32),
            start_at: warmup + stagger.times(i as u64),
            interval,
            count: params.datagrams,
            payload_len: params.payload_len,
            ..Default::default()
        };
        let host = TrafficHost::new(format!("h{id}"), host_mac(id), host_ip(id), cfg);
        t.host(ft.edge_of_host(i, params.hosts_per_edge), Box::new(host));
    }
    let mut built = t.build();
    let deadline = warmup
        + stagger.times(n as u64)
        + interval.times(params.datagrams)
        + SimDuration::millis(200);
    built.net.run_until(SimTime(deadline.as_nanos()));
    let now = built.net.now();

    // Core links: exactly one endpoint on a core switch.
    let core_nodes: Vec<NodeId> = ft.core.iter().map(|&c| built.bridge_nodes[c.0]).collect();
    let core_loads: Vec<f64> = built
        .bridge_links
        .iter()
        .filter_map(|&l| {
            let lk = built.net.link(l);
            let is_core = core_nodes.contains(&lk.a.node) || core_nodes.contains(&lk.b.node);
            is_core.then(|| {
                (lk.stats(arppath_netsim::Dir::AtoB).tx_bytes
                    + lk.stats(arppath_netsim::Dir::BtoA).tx_bytes) as f64
            })
        })
        .collect();
    let mean = core_loads.iter().sum::<f64>() / core_loads.len().max(1) as f64;
    let used = core_loads.iter().filter(|&&x| x > mean * 0.05).count() as f64
        / core_loads.len().max(1) as f64;

    // Path diversity: which core each pair's learned path crosses.
    let mut diversity = DiversityCounter::new();
    let walker = PathWalker::new(&built);
    for (i, &dst) in pairs.iter().enumerate() {
        let from = ft.edge_of_host(i, params.hosts_per_edge);
        let path = walker.walk(from, host_mac((dst + 1) as u32), now);
        for b in &path {
            if ft.is_core(*b) {
                diversity.record(i as u64, b.0 as u64);
            }
        }
    }

    let mut sent = 0u64;
    let mut delivered = 0u64;
    for &h in &built.host_nodes {
        let host = built.net.device::<TrafficHost>(h);
        sent += host.sent();
        delivered += host.rx_datagrams;
    }

    E8Row {
        pattern: label,
        k: params.k,
        hosts: n,
        core_links: core_loads.len(),
        jain_core: jain_index(&core_loads),
        core_links_used: used,
        distinct_cores: diversity.distinct_items(),
        total_cores: ft.core.len(),
        pairs_per_core_jain: jain_index(&diversity.keys_per_item()),
        core_crossing_pairs: diversity.keys(),
        delivered,
        sent,
        histogram: UtilizationHistogram::from_loads(&core_loads),
    }
}

/// Run both patterns on one fabric size.
pub fn run(params: &E8Params) -> E8Result {
    E8Result {
        rows: vec![
            run_pattern(params, TrafficPattern::Permutation, "permutation"),
            run_pattern(
                params,
                TrafficPattern::Hotspot { hot_receivers: params.hot_receivers },
                "hotspot",
            ),
        ],
    }
}

/// Render the load-distribution summary over any number of runs (one
/// per fabric size) — the table the All-Path study's load-balance
/// figures are compared against.
pub fn table(results: &[E8Result]) -> Table {
    let mut t = Table::new(
        "E8 (All-Path scalability): fat-tree core load balance",
        &[
            "k",
            "pattern",
            "hosts",
            "core links",
            "jain (core load)",
            "core links used",
            "cores used",
            "jain (pairs/core)",
            "delivered",
        ],
    );
    for result in results {
        for r in &result.rows {
            t.row(&[
                r.k.to_string(),
                r.pattern.to_string(),
                r.hosts.to_string(),
                r.core_links.to_string(),
                format!("{:.3}", r.jain_core),
                format!("{:.0}%", r.core_links_used * 100.0),
                format!("{}/{}", r.distinct_cores, r.total_cores),
                format!("{:.3}", r.pairs_per_core_jain),
                format!("{}/{}", r.delivered, r.sent),
            ]);
        }
    }
    t
}

/// Render the per-core-link utilization histogram for one fabric size
/// (buckets of load relative to the mean core-link load; pattern
/// columns side by side).
pub fn utilization_table(result: &E8Result) -> Table {
    let k = result.rows.first().map(|r| r.k).unwrap_or(0);
    let series: Vec<(&str, &UtilizationHistogram)> =
        result.rows.iter().map(|r| (r.pattern, &r.histogram)).collect();
    UtilizationHistogram::table(
        &format!("E8: core-link utilization histogram, k={k} fat-tree"),
        &series,
    )
}

/// The headline claim: under the permutation workload the race spreads
/// inter-pod pairs across a **majority** of the parallel core switches
/// (no spanning-tree-style funnelling onto one), core-load fairness
/// stays above 0.5, and nothing is lost. Not *every* core need win:
/// with fixed per-link jitter a core that is never on any pair's
/// fastest path stays idle, which is physically faithful.
pub fn verify_spread(result: &E8Result) -> bool {
    result
        .rows
        .iter()
        .filter(|r| r.pattern == "permutation")
        .all(|r| r.distinct_cores * 2 > r.total_cores && r.jain_core > 0.5 && r.delivered == r.sent)
}
