//! **E2 — §3.2 / Figure 3: path repair under successive link failures
//! during a video stream.**
//!
//! Host A streams CBR "video" to host B across the four-NetFPGA
//! fabric; links on the active path are cut one after another. For
//! ARP-Path, PathFail/PathRequest/PathReply re-establish the path
//! within a few network round trips and the viewer barely notices; the
//! STP baseline reconverges on protocol timers (tens of seconds with
//! standard values); the repair-disabled ablation only heals by entry
//! expiry.

use arppath::ArpPathConfig;
use arppath_host::{StreamClient, StreamClientConfig, StreamConfig, StreamServer};
use arppath_metrics::Table;
use arppath_netfpga::NetFpgaParams;
use arppath_netsim::{SimDuration, SimTime};
use arppath_stp::StpConfig;
use arppath_topo::{fig3_topology, BridgeKind};

use super::{host_ip, host_mac};

/// Which protocol variant a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum E2Variant {
    /// Full ARP-Path with repair (the paper's demo).
    ArpPath,
    /// ARP-Path with repair disabled (ablation: heal by expiry only).
    ArpPathNoRepair,
    /// 802.1D STP baseline.
    Stp,
}

impl E2Variant {
    /// Stable label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            E2Variant::ArpPath => "arp-path",
            E2Variant::ArpPathNoRepair => "arp-path (no repair)",
            E2Variant::Stp => "stp",
        }
    }
}

/// Parameters of one E2 run.
#[derive(Debug, Clone, Copy)]
pub struct E2Params {
    /// Stream rate (chunks per second).
    pub rate_pps: u64,
    /// Chunk payload bytes.
    pub chunk_len: usize,
    /// Stream duration.
    pub duration: SimDuration,
    /// Instants of the successive link cuts, as offsets into the run.
    /// Cut #1 takes NF2—NF4 (on the initial A→B path), cut #2 takes
    /// NF1—NF3 (on the repaired path) — each hits live traffic.
    pub failures: [SimDuration; 2],
    /// STP timer scale-down divisor (1 = standard timers). The tests
    /// use a larger divisor to keep wall-clock small; the shipped
    /// harness uses 1.
    pub stp_timer_divisor: u64,
    /// A stall is a gap longer than this.
    pub stall_threshold: SimDuration,
}

impl Default for E2Params {
    fn default() -> Self {
        E2Params {
            rate_pps: 500,
            chunk_len: 1000,
            duration: SimDuration::secs(60),
            failures: [SimDuration::secs(10), SimDuration::secs(30)],
            stp_timer_divisor: 1,
            stall_threshold: SimDuration::millis(50),
        }
    }
}

/// Result of one variant's run.
#[derive(Debug, Clone)]
pub struct E2Row {
    /// Variant label.
    pub variant: &'static str,
    /// Chunks the server transmitted.
    pub sent: u64,
    /// Chunks the client received.
    pub received: u64,
    /// Chunks lost.
    pub lost: u64,
    /// Per-failure recovery time: first chunk delivered after the cut,
    /// minus the cut instant (`None` when the stream never recovered).
    pub recovery: Vec<Option<SimDuration>>,
    /// Longest stall the viewer saw.
    pub max_stall: SimDuration,
    /// Stalls longer than the threshold.
    pub stall_count: usize,
}

/// Full E2 output.
#[derive(Debug, Clone)]
pub struct E2Result {
    /// One row per variant.
    pub rows: Vec<E2Row>,
}

/// Run one variant.
pub fn run_variant(variant: E2Variant, params: &E2Params) -> E2Row {
    let kind = match variant {
        E2Variant::ArpPath => {
            BridgeKind::ArpPathNetFpga(ArpPathConfig::default(), NetFpgaParams::default())
        }
        E2Variant::ArpPathNoRepair => BridgeKind::ArpPathNetFpga(
            ArpPathConfig::default().without_repair(),
            NetFpgaParams::default(),
        ),
        E2Variant::Stp => {
            let cfg = if params.stp_timer_divisor > 1 {
                StpConfig::scaled_down(params.stp_timer_divisor)
            } else {
                StpConfig::standard()
            };
            BridgeKind::StpNetFpga(cfg, NetFpgaParams::default())
        }
    };
    let (mut t, fig) = fig3_topology(kind);
    // With homogeneous links the engine's deterministic FIFO tiebreak
    // makes the initial ARP race win via NF2 (NF1's lower port), so
    // the A→B path starts as NF1→NF2→NF4; the scripted cuts below are
    // chosen to hit the active path each time. STP with NF1 as root
    // also forwards A→B via NF2 (lower bridge id wins the tiebreak).
    t.stp_priority(fig.nf[0], 0x1000);

    // STP needs its tree up before the stream starts.
    let warmup = match variant {
        E2Variant::Stp => {
            let cfg = if params.stp_timer_divisor > 1 {
                StpConfig::scaled_down(params.stp_timer_divisor)
            } else {
                StpConfig::standard()
            };
            SimDuration::nanos(cfg.forward_delay.as_nanos() * 2 + cfg.hello_time.as_nanos() * 4)
        }
        _ => SimDuration::millis(100),
    };

    let total_chunks = params.rate_pps * params.duration.as_nanos() / 1_000_000_000;
    let server = StreamServer::new(
        "A",
        host_mac(1),
        host_ip(1),
        StreamConfig {
            client: host_ip(2),
            start_at: warmup,
            rate_pps: params.rate_pps,
            chunk_len: params.chunk_len,
            total_chunks,
        },
    );
    let client = StreamClient::new(
        "B",
        host_mac(2),
        host_ip(2),
        StreamClientConfig { server: host_ip(1), report_interval: SimDuration::millis(500) },
    );
    let a_ix = t.host(fig.host_a_bridge(), Box::new(server));
    let b_ix = t.host(fig.host_b_bridge(), Box::new(client));
    let mut built = t.build();

    // Scripted failures, each hitting the then-active path:
    // the flood tiebreak makes the initial path A—NF1—NF2—NF4—B, so
    // cut #1 takes NF2—NF4 (repair re-routes via NF1—NF3—NF4), and
    // cut #2 takes NF1—NF3 (forcing the final NF1—NF2—NF3—NF4 route).
    let l1 = built.link_between(fig.nf[1], fig.nf[3]).expect("NF2—NF4 exists");
    let l2 = built.link_between(fig.nf[0], fig.nf[2]).expect("NF1—NF3 exists");
    let f1 = SimTime((warmup + params.failures[0]).as_nanos());
    let f2 = SimTime((warmup + params.failures[1]).as_nanos());
    built.net.schedule_link_down(l1, f1);
    built.net.schedule_link_down(l2, f2);

    let end = warmup + params.duration + SimDuration::secs(2);
    built.net.run_until(SimTime(end.as_nanos()));

    let server = built.net.device::<StreamServer>(built.host_nodes[a_ix]);
    let sent = server.sent;
    let client = built.net.device::<StreamClient>(built.host_nodes[b_ix]);
    let recovery = [f1, f2]
        .iter()
        .map(|f| {
            client
                .arrivals
                .points()
                .iter()
                .find(|&&(t, _)| t >= f.as_nanos())
                .map(|&(t, _)| SimDuration::nanos(t - f.as_nanos()))
        })
        .collect();
    let stalls = client.stalls_over(params.stall_threshold);
    E2Row {
        variant: variant.label(),
        sent,
        received: client.received,
        lost: sent.saturating_sub(client.received),
        recovery,
        max_stall: SimDuration::nanos(client.arrivals.max_gap().map(|(_, g)| g).unwrap_or(0)),
        stall_count: stalls.len(),
    }
}

/// Run all three variants.
pub fn run(params: &E2Params) -> E2Result {
    E2Result {
        rows: vec![
            run_variant(E2Variant::ArpPath, params),
            run_variant(E2Variant::ArpPathNoRepair, params),
            run_variant(E2Variant::Stp, params),
        ],
    }
}

/// Render the paper-style table.
pub fn table(result: &E2Result) -> Table {
    let mut t = Table::new(
        "E2 (Fig. 3, §3.2): video stream across successive link failures",
        &[
            "variant",
            "sent",
            "received",
            "lost",
            "recovery #1",
            "recovery #2",
            "max stall",
            "stalls >50ms",
        ],
    );
    for row in &result.rows {
        let rec = |r: &Option<SimDuration>| match r {
            Some(d) => format!("{d}"),
            None => "never".to_string(),
        };
        t.row(&[
            row.variant.to_string(),
            row.sent.to_string(),
            row.received.to_string(),
            row.lost.to_string(),
            rec(&row.recovery[0]),
            rec(&row.recovery[1]),
            format!("{}", row.max_stall),
            row.stall_count.to_string(),
        ]);
    }
    t
}
