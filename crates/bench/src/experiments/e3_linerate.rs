//! **E3 — §3: throughput of the ARP-Path NetFPGA bridge at 1 Gbit/s.**
//!
//! The demo's stated objective: "understand the robustness and
//! throughput of ARP-Path transparent bridges in 1 Gbit/s wired
//! networks". We drive one NetFPGA-model bridge with back-to-back
//! frames across the standard Ethernet size sweep and check it
//! sustains line rate: delivered frame spacing equals the wire
//! occupancy of each size (i.e. zero pipeline-induced gaps), for both
//! an established unicast path and worst-case minimum-size frames.

use super::{host_ip, host_mac};
use arppath::{ArpPathBridge, ArpPathConfig};
use arppath_metrics::Table;
use arppath_netfpga::{NetFpgaParams, NetFpgaSwitch};
use arppath_netsim::{
    Ctx, Device, LinkParams, NetworkBuilder, PortNo, QueuePolicy, SimDuration, SimTime, TimerToken,
};
use arppath_wire::{
    frame::WIRE_OVERHEAD, ArpPacket, EthernetFrame, IpProto, Ipv4Packet, MacAddr, Payload,
};
use bytes::Bytes;

/// Parameters of one E3 run.
#[derive(Debug, Clone, Copy)]
pub struct E3Params {
    /// Frames per size point.
    pub frames_per_size: u64,
    /// Link rate under test.
    pub bandwidth_bps: u64,
}

impl Default for E3Params {
    fn default() -> Self {
        E3Params { frames_per_size: 2_000, bandwidth_bps: 1_000_000_000 }
    }
}

/// One row of the size sweep.
#[derive(Debug, Clone, Copy)]
pub struct E3Row {
    /// Ethernet frame size (header+payload, no FCS).
    pub frame_len: usize,
    /// Frames offered.
    pub offered: u64,
    /// Frames delivered.
    pub delivered: u64,
    /// Theoretical line-rate packets/s for this size.
    pub theoretical_pps: f64,
    /// Measured delivered packets/s.
    pub measured_pps: f64,
    /// Average per-frame bridge latency (ns) excluding serialization.
    pub pipeline_latency_ns: u64,
}

/// Full E3 output.
#[derive(Debug, Clone)]
pub struct E3Result {
    /// One row per frame size.
    pub rows: Vec<E3Row>,
}

/// Blasts `count` minimum-interval frames of a given size.
struct Blaster {
    name: String,
    dst: MacAddr,
    src: MacAddr,
    payload_len: usize,
    count: u64,
    sent: u64,
    interval: SimDuration,
}

const TOKEN_TX: TimerToken = TimerToken(0xB1A5_0001);

impl Device for Blaster {
    fn name(&self) -> &str {
        &self.name
    }
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.schedule(SimDuration::ZERO, TOKEN_TX);
    }
    fn on_timer(&mut self, _token: TimerToken, ctx: &mut Ctx) {
        if self.sent >= self.count {
            return;
        }
        let pkt = Ipv4Packet::new(
            host_ip(1),
            host_ip(2),
            IpProto::Udp,
            Bytes::from(vec![0u8; self.payload_len]),
        );
        ctx.send(PortNo(0), EthernetFrame::new(self.dst, self.src, Payload::Ipv4(pkt)));
        self.sent += 1;
        if self.sent < self.count {
            ctx.schedule(self.interval, TOKEN_TX);
        }
    }
    fn on_frame(&mut self, _: PortNo, _: EthernetFrame, _: &mut Ctx) {}
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Counts arrivals and records first/last arrival instants.
struct Sink {
    name: String,
    received: u64,
    first: Option<SimTime>,
    last: Option<SimTime>,
}

impl Device for Sink {
    fn name(&self) -> &str {
        &self.name
    }
    fn on_frame(&mut self, _: PortNo, frame: EthernetFrame, ctx: &mut Ctx) {
        // Count only the unicast data under test; the bridge's hello
        // beacons and the path-establishing ARP flood are not part of
        // the offered load.
        if frame.is_flooded() || !matches!(frame.payload, Payload::Ipv4(_)) {
            return;
        }
        self.received += 1;
        if self.first.is_none() {
            self.first = Some(ctx.now());
        }
        self.last = Some(ctx.now());
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Run the sweep over the classic RFC 2544 frame sizes.
pub fn run(params: &E3Params) -> E3Result {
    let sizes = [60usize, 124, 252, 508, 1020, 1274, 1514];
    let mut rows = Vec::new();
    for &frame_len in &sizes {
        rows.push(run_size(frame_len, params));
    }
    E3Result { rows }
}

fn run_size(frame_len: usize, params: &E3Params) -> E3Row {
    // Ethernet header 14 + IP header 20 + payload = frame_len.
    let payload_len = frame_len - 14 - 20;
    let wire_bits = ((frame_len + WIRE_OVERHEAD) * 8) as u64;
    let interval = SimDuration::nanos(wire_bits * 1_000_000_000 / params.bandwidth_bps);

    let nf_params = NetFpgaParams::default();
    let src = host_mac(1);
    let dst = host_mac(2);
    let mut b = NetworkBuilder::new();
    let tx = b.add(Box::new(Blaster {
        name: "tx".into(),
        dst,
        src,
        payload_len,
        count: params.frames_per_size,
        sent: 0,
        interval,
    }));
    let bridge = b.add(Box::new(NetFpgaSwitch::new(
        ArpPathBridge::new("nf", MacAddr::from_index(2, 1), 2, ArpPathConfig::default()),
        nf_params,
    )));
    let rx = b.add(Box::new(Sink { name: "rx".into(), received: 0, first: None, last: None }));
    let lp = LinkParams {
        bandwidth_bps: params.bandwidth_bps,
        propagation: SimDuration::ZERO,
        queue: QueuePolicy::drop_tail(1 << 20),
        ..Default::default()
    };
    b.link(tx, 0, bridge, 0, lp);
    b.link(bridge, 1, rx, 0, lp);
    let mut net = b.build();

    // Pre-establish the path so the sweep measures pure forwarding:
    // one ARP exchange S→D.
    let arp = ArpPacket::request(src, host_ip(1), host_ip(2));
    net.inject(bridge, PortNo(0), EthernetFrame::arp_request(src, arp));
    let reply = ArpPacket {
        op: arppath_wire::ArpOp::Reply,
        sha: dst,
        spa: host_ip(2),
        tha: src,
        tpa: host_ip(1),
    };
    net.inject(bridge, PortNo(1), EthernetFrame::arp_reply(reply));

    // Bounded horizon: the bridge's hello beacons keep the event queue
    // alive forever, so "run until idle" would never return. Everything
    // is delivered well within offered-load time plus a margin.
    let horizon =
        SimDuration::nanos(interval.as_nanos() * (params.frames_per_size + 10) + 1_000_000);
    net.run_until(SimTime(horizon.as_nanos()));
    let sink = net.device::<Sink>(rx);
    let delivered = sink.received;
    let span = match (sink.first, sink.last) {
        (Some(f), Some(l)) if l > f => (l - f).as_nanos(),
        _ => 0,
    };
    // Rate over the inter-arrival span of n frames = n-1 intervals.
    let measured_pps =
        if span > 0 { (delivered.saturating_sub(1)) as f64 * 1e9 / span as f64 } else { 0.0 };
    let theoretical_pps = params.bandwidth_bps as f64 / wire_bits as f64;
    E3Row {
        frame_len,
        offered: params.frames_per_size,
        delivered,
        theoretical_pps,
        measured_pps,
        pipeline_latency_ns: nf_params.hardware_latency(frame_len).as_nanos(),
    }
}

/// Render the paper-style table.
pub fn table(result: &E3Result) -> Table {
    let mut t = Table::new(
        "E3 (§3): ARP-Path/NetFPGA forwarding at 1 Gbit/s, frame-size sweep",
        &[
            "frame (B)",
            "offered",
            "delivered",
            "line-rate pps",
            "measured pps",
            "ratio",
            "pipeline (ns)",
        ],
    );
    for r in &result.rows {
        t.row(&[
            r.frame_len.to_string(),
            r.offered.to_string(),
            r.delivered.to_string(),
            format!("{:.0}", r.theoretical_pps),
            format!("{:.0}", r.measured_pps),
            format!("{:.4}", r.measured_pps / r.theoretical_pps),
            r.pipeline_latency_ns.to_string(),
        ]);
    }
    t
}

/// Line rate holds when every size point delivered everything at ≥99%
/// of the theoretical rate.
pub fn verify_linerate(result: &E3Result) -> bool {
    result
        .rows
        .iter()
        .all(|r| r.delivered == r.offered && r.measured_pps / r.theoretical_pps > 0.99)
}
