//! **E12 — shard-scaling push: the k=16 fabric on 1/2/4/8 workers.**
//!
//! The All-Path scalability question (arXiv:1703.08744) is ultimately
//! about how far per-host-pair path state and the machinery simulating
//! it scale. E8 stops at k=8; this experiment instantiates the k=16
//! jittered fat-tree — 320 switches, 128 edge racks, up to 16k hosts
//! (`hosts_per_edge` ≤ 128; geometry auto-derived per PR 8's
//! autosizing) — and sweeps the sharded engine's worker count,
//! reporting three numbers per point:
//!
//! * **wall clock** per shard count (the scaling curve itself);
//! * **sync rounds per simulated millisecond** — how often the
//!   conservative window protocol made the workers rendezvous; the
//!   per-pair lookahead matrix (PR 10) exists to push this down;
//! * **bytes per station** — the d-left path tables' heap footprint
//!   (SoA planes, PR 10) summed over every bridge and divided by the
//!   attached host count, with the pre-PR array-of-structs layout as
//!   the yardstick.
//!
//! Correctness rides along: every run must deliver every datagram, and
//! the merged delivery trace must be byte-identical across *all* shard
//! counts ([`verify_trace_identity`]; CI additionally diffs
//! `--trace-out` files). The `use_matrix` knob collapses the lookahead
//! matrix to the PR 4 global-`L` computation so the sync-cost win is
//! measurable on the same scenario (`repro -- e12 --e12-lookahead
//! global`).

use super::{host_ip, host_mac};
use arppath::{ArpPathBridge, ArpPathConfig};
use arppath_host::{pairings, TrafficConfig, TrafficHost, TrafficPattern};
use arppath_metrics::Table;
use arppath_netsim::{DeliveryTracer, SimDuration, SimTime};
use arppath_topo::{generic, BridgeIx, BridgeKind, FatTree, Partition, TopoBuilder};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Parameters of one E12 sweep (one fabric, several worker counts).
#[derive(Debug, Clone)]
pub struct E12Params {
    /// Fat-tree arity (even). The headline configuration is 16.
    pub k: usize,
    /// Hosts attached per edge switch (`k²/2` edges; 128 at k=16, so
    /// up to 16 384 hosts at full racks of 128).
    pub hosts_per_edge: usize,
    /// UDP datagrams each host sends to its permutation peer.
    pub datagrams: u64,
    /// UDP payload bytes.
    pub payload_len: usize,
    /// Workload + jitter seed.
    pub seed: u64,
    /// Worker counts to sweep (each clamped to the pod count `k`).
    pub shard_counts: Vec<usize>,
    /// `true`: per-pair lookahead matrix (PR 10). `false`: collapse to
    /// the PR 4 global-`L` window computation — the sync-cost
    /// baseline.
    pub use_matrix: bool,
}

impl Default for E12Params {
    fn default() -> Self {
        E12Params {
            k: 16,
            hosts_per_edge: 16,
            datagrams: 5,
            payload_len: 700,
            seed: 0xE12,
            shard_counts: vec![1, 2, 4, 8],
            use_matrix: true,
        }
    }
}

impl E12Params {
    /// The CI-sized configuration: same k=16 fabric shape, one host
    /// per rack (128 hosts), two datagrams each — small enough to
    /// sweep all four shard counts and diff traces in seconds.
    pub fn quick() -> Self {
        E12Params { hosts_per_edge: 1, datagrams: 2, ..Default::default() }
    }
}

/// One worker count's measurements.
#[derive(Debug, Clone)]
pub struct E12Row {
    /// Worker count actually used (requested, clamped to `k`).
    pub shards: usize,
    /// Wall-clock milliseconds for the run.
    pub wall_ms: f64,
    /// Exchange-barrier rounds the window protocol executed (0 for the
    /// single-threaded engine).
    pub sync_rounds: u64,
    /// `sync_rounds` per simulated millisecond.
    pub rounds_per_sim_ms: f64,
    /// Datagrams delivered fabric-wide.
    pub delivered: u64,
    /// Datagrams sent fabric-wide.
    pub sent: u64,
}

/// Full E12 output.
#[derive(Debug, Clone)]
pub struct E12Result {
    /// Fat-tree arity.
    pub k: usize,
    /// Hosts attached.
    pub hosts: usize,
    /// Bridges in the fabric.
    pub bridges: usize,
    /// `"matrix"` or `"global"` — which window computation ran.
    pub lookahead: &'static str,
    /// One row per swept worker count.
    pub rows: Vec<E12Row>,
    /// Σ path-table heap bytes over every bridge (SoA layout).
    pub table_bytes: usize,
    /// What the pre-PR-10 AoS slot layout would spend on the same
    /// geometry.
    pub table_bytes_aos: usize,
}

impl E12Result {
    /// The headline footprint figure: table heap bytes per attached
    /// station.
    pub fn bytes_per_station(&self) -> f64 {
        self.table_bytes as f64 / self.hosts.max(1) as f64
    }

    /// The AoS yardstick, per station.
    pub fn aos_bytes_per_station(&self) -> f64 {
        self.table_bytes_aos as f64 / self.hosts.max(1) as f64
    }
}

/// Lay out one E12 scenario — the jittered k-ary fabric and the seeded
/// permutation workload — shared by every sweep point and the trace
/// capture, so all of them simulate the *same* network (E8's scenario
/// discipline).
fn scenario(params: &E12Params) -> (TopoBuilder, FatTree, SimTime) {
    let mut t = TopoBuilder::new(BridgeKind::ArpPath(ArpPathConfig::default()));
    let ft = generic::fat_tree_jittered(&mut t, params.k, params.seed.wrapping_add(0xFA7));
    let n = ft.host_capacity(params.hosts_per_edge);
    let pairs = pairings(n, TrafficPattern::Permutation, params.seed);
    let warmup = SimDuration::millis(100);
    let stagger = SimDuration::micros(137);
    let interval = SimDuration::millis(5);
    for (i, &dst) in pairs.iter().enumerate() {
        let id = (i + 1) as u32;
        let cfg = TrafficConfig {
            target: host_ip((dst + 1) as u32),
            start_at: warmup + stagger.times(i as u64),
            interval,
            count: params.datagrams,
            payload_len: params.payload_len,
            ..Default::default()
        };
        let host = TrafficHost::new(format!("h{id}"), host_mac(id), host_ip(id), cfg);
        t.host(ft.edge_of_host(i, params.hosts_per_edge), Box::new(host));
    }
    let deadline = warmup
        + stagger.times(n as u64)
        + interval.times(params.datagrams)
        + SimDuration::millis(200);
    (t, ft, SimTime(deadline.as_nanos()))
}

/// Run the sweep: one fresh instantiation of the same scenario per
/// worker count, wall-clocked; the table footprint is read off the
/// first run's bridges (the geometry is identical at every point).
pub fn run(params: &E12Params) -> E12Result {
    let mut rows = Vec::new();
    let mut footprint: Option<(usize, usize, usize)> = None; // (bridges, soa, aos)
    let mut hosts = 0;
    for &requested in &params.shard_counts {
        let (t, ft, deadline) = scenario(params);
        hosts = ft.host_capacity(params.hosts_per_edge);
        let shards = requested.min(ft.k);
        let started = Instant::now();
        let (sync_rounds, sent, delivered, tables) = if shards > 1 {
            let partition = Partition::rack_major(&ft, params.hosts_per_edge, hosts, shards);
            let mut topo = t.build_sharded_with(&partition, false, params.use_matrix);
            topo.net.run_until(deadline);
            let (mut sent, mut delivered) = (0u64, 0u64);
            for &h in &topo.host_nodes {
                let host = topo.net.device::<TrafficHost>(h);
                sent += host.sent();
                delivered += host.rx_datagrams;
            }
            let tables = table_footprint(topo.bridge_nodes.len(), |ix| topo.arppath(ix));
            (topo.net.sync_rounds(), sent, delivered, tables)
        } else {
            let mut built = t.build();
            built.net.run_until(deadline);
            let (mut sent, mut delivered) = (0u64, 0u64);
            for &h in &built.host_nodes {
                let host = built.net.device::<TrafficHost>(h);
                sent += host.sent();
                delivered += host.rx_datagrams;
            }
            let tables = table_footprint(built.bridge_nodes.len(), |ix| built.arppath(ix));
            (0, sent, delivered, tables)
        };
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        footprint.get_or_insert(tables);
        rows.push(E12Row {
            shards,
            wall_ms,
            sync_rounds,
            rounds_per_sim_ms: sync_rounds as f64 / (deadline.0 as f64 / 1e6),
            delivered,
            sent,
        });
    }
    let (bridges, table_bytes, table_bytes_aos) = footprint.expect("shard_counts must be nonempty");
    E12Result {
        k: params.k,
        hosts,
        bridges,
        lookahead: if params.use_matrix { "matrix" } else { "global" },
        rows,
        table_bytes,
        table_bytes_aos,
    }
}

/// Σ (SoA heap bytes, AoS-equivalent bytes) over every bridge's path
/// table.
fn table_footprint<'a>(
    bridges: usize,
    arppath: impl Fn(BridgeIx) -> &'a ArpPathBridge,
) -> (usize, usize, usize) {
    let mut soa = 0;
    let mut aos = 0;
    for ix in 0..bridges {
        let b = arppath(BridgeIx(ix));
        soa += b.table_heap_bytes();
        aos += b.table_heap_bytes_aos_equivalent();
    }
    (bridges, soa, aos)
}

/// The merged, timestamp-sorted delivery trace of one run at `shards`
/// workers — the byte-comparable artifact CI diffs across shard
/// counts (`repro -- e12 --quick --shards N --trace-out FILE`).
pub fn delivery_trace(params: &E12Params, shards: usize) -> Vec<String> {
    let (t, ft, deadline) = scenario(params);
    let shards = shards.min(ft.k);
    if shards > 1 {
        let hosts = ft.host_capacity(params.hosts_per_edge);
        let partition = Partition::rack_major(&ft, params.hosts_per_edge, hosts, shards);
        let mut topo = t.build_sharded_with(&partition, true, params.use_matrix);
        topo.net.run_until(deadline);
        topo.net.delivery_trace()
    } else {
        let sink = Arc::new(Mutex::new(DeliveryTracer::new()));
        let mut t = t;
        t.set_tracer(Box::new(sink.clone()));
        let mut built = t.build();
        built.net.run_until(deadline);
        let records = std::mem::take(&mut sink.lock().unwrap().records);
        DeliveryTracer::render_sorted(records)
    }
}

/// The equivalence half of the acceptance bar: every swept shard count
/// produces the byte-identical merged trace. Runs the scenario once
/// per count with tracing on — call on quick geometry unless you mean
/// to pay full-scale runs twice.
pub fn verify_trace_identity(params: &E12Params) -> bool {
    let mut reference: Option<Vec<String>> = None;
    for &shards in &params.shard_counts {
        let trace = delivery_trace(params, shards);
        match &reference {
            None => reference = Some(trace),
            Some(r) => {
                if *r != trace {
                    return false;
                }
            }
        }
    }
    reference.is_some_and(|r| !r.is_empty())
}

/// Delivery sanity over the sweep: nothing lost at any worker count.
pub fn verify_delivery(result: &E12Result) -> bool {
    !result.rows.is_empty() && result.rows.iter().all(|r| r.sent > 0 && r.delivered == r.sent)
}

/// The footprint half of the acceptance bar: the SoA planes cost less
/// per station than the AoS layout they replaced.
pub fn verify_footprint(result: &E12Result) -> bool {
    result.table_bytes < result.table_bytes_aos
}

/// Render the scaling table.
pub fn table(result: &E12Result) -> Table {
    let mut t = Table::new(
        format!(
            "E12 (shard scaling): k={} fat-tree, {} hosts, {} bridges, {} lookahead",
            result.k, result.hosts, result.bridges, result.lookahead
        ),
        &["shards", "wall ms", "sync rounds", "rounds/sim ms", "delivered"],
    );
    for r in &result.rows {
        t.row(&[
            r.shards.to_string(),
            format!("{:.0}", r.wall_ms),
            r.sync_rounds.to_string(),
            format!("{:.1}", r.rounds_per_sim_ms),
            format!("{}/{}", r.delivered, r.sent),
        ]);
    }
    t
}

/// Render the table-footprint report.
pub fn footprint_table(result: &E12Result) -> Table {
    let mut t = Table::new(
        format!("E12: d-left path-table footprint, k={} ({} stations)", result.k, result.hosts),
        &["layout", "total bytes", "bytes/station"],
    );
    t.row(&[
        "SoA planes (PR 10)".into(),
        result.table_bytes.to_string(),
        format!("{:.0}", result.bytes_per_station()),
    ]);
    t.row(&[
        "AoS slots (pre-PR)".into(),
        result.table_bytes_aos.to_string(),
        format!("{:.0}", result.aos_bytes_per_station()),
    ]);
    t
}
