//! **E5 — §2.2 "load distribution and path diversity".**
//!
//! The paper lists load spreading as a core advantage: ARP-Path paths
//! follow per-flow races, so different host pairs settle on different
//! links, while STP funnels every flow onto one tree (and never uses
//! blocked links at all). We attach many host pairs to a grid fabric,
//! run an all-pairs ping workload, and compare how the data traffic
//! spreads over the fabric links — Jain's fairness index plus the
//! fraction of links carrying any data.

use super::{attach_ping_pair, stp_convergence_time};
use arppath::ArpPathConfig;
use arppath_host::{PingConfig, PingHost};
use arppath_metrics::{jain_index, Table};
use arppath_netsim::{SimDuration, SimTime};
use arppath_stp::StpConfig;
use arppath_topo::{generic, BridgeKind, TopoBuilder};

/// Parameters of one E5 run.
#[derive(Debug, Clone, Copy)]
pub struct E5Params {
    /// Grid side (the fabric is `side × side`).
    pub side: usize,
    /// Ping probes per pair.
    pub probes: u64,
    /// STP timer divisor (tests use >1 for speed; harness uses 1).
    pub stp_timer_divisor: u64,
}

impl Default for E5Params {
    fn default() -> Self {
        E5Params { side: 4, probes: 50, stp_timer_divisor: 1 }
    }
}

/// One protocol's spreading metrics.
#[derive(Debug, Clone)]
pub struct E5Row {
    /// `"arp-path"` or `"stp"`.
    pub config: &'static str,
    /// Jain fairness of per-link data-frame counts (fabric links only).
    pub jain: f64,
    /// Fraction of fabric links carrying a meaningful share of the
    /// traffic (> 5% of the mean link load).
    pub links_used: f64,
    /// Mean RTT across all pairs (µs).
    pub mean_rtt_us: f64,
    /// Total bytes the fabric carried.
    pub total_frames: u64,
}

/// Full E5 output.
#[derive(Debug, Clone)]
pub struct E5Result {
    /// ARP-Path row then STP row.
    pub rows: Vec<E5Row>,
}

fn run_one(kind: BridgeKind, params: &E5Params, label: &'static str) -> E5Row {
    let mut t = TopoBuilder::new(kind);
    let bridges = generic::grid(&mut t, params.side, params.side);
    // Host pairs on opposite corners of every row: corner-to-corner
    // flows must cross the fabric.
    let warmup = match kind {
        BridgeKind::Stp(_) | BridgeKind::StpNetFpga(..) => {
            if params.stp_timer_divisor > 1 {
                SimDuration::nanos(stp_convergence_time().as_nanos() / params.stp_timer_divisor)
            } else {
                stp_convergence_time()
            }
        }
        _ => SimDuration::millis(100),
    };
    let mut probers = Vec::new();
    let mut host_id = 1u32;
    for row in 0..params.side {
        let left = bridges[row * params.side];
        let right = bridges[row * params.side + params.side - 1];
        let cfg = PingConfig {
            start_at: warmup + SimDuration::millis(7 * row as u64),
            interval: SimDuration::millis(10),
            count: params.probes,
            // Big probes so data bytes dwarf control chatter in the
            // per-link load measurement below.
            payload_len: 1000,
            ..Default::default()
        };
        let (p, _r) = attach_ping_pair(&mut t, left, right, host_id, host_id + 1, cfg);
        probers.push(p);
        host_id += 2;
    }
    // Column pairs as well, to cross flows.
    for col in 0..params.side {
        let top = bridges[col];
        let bottom = bridges[(params.side - 1) * params.side + col];
        let cfg = PingConfig {
            start_at: warmup + SimDuration::millis(3 + 7 * col as u64),
            interval: SimDuration::millis(10),
            count: params.probes,
            payload_len: 1000,
            ..Default::default()
        };
        let (p, _r) = attach_ping_pair(&mut t, top, bottom, host_id, host_id + 1, cfg);
        probers.push(p);
        host_id += 2;
    }
    let mut built = t.build();
    let deadline = warmup + SimDuration::millis(10).times(params.probes + 100);
    built.net.run_until(SimTime(deadline.as_nanos()));

    // Per-fabric-link transmitted bytes. With 1000-byte probes the
    // data dwarfs control chatter (60-byte hellos at 1 pps per port,
    // 60-byte BPDUs every 2 s), so byte loads measure data spreading.
    // "Used" means the link carried a meaningful share — above 5% of
    // the mean load — which excludes links carrying only control.
    let loads: Vec<f64> = built
        .bridge_links
        .iter()
        .map(|&l| {
            let link = built.net.link(l);
            (link.stats(arppath_netsim::Dir::AtoB).tx_bytes
                + link.stats(arppath_netsim::Dir::BtoA).tx_bytes) as f64
        })
        .collect();
    let mean = loads.iter().sum::<f64>() / loads.len().max(1) as f64;
    let used =
        loads.iter().filter(|&&x| x > mean * 0.05).count() as f64 / loads.len().max(1) as f64;
    let mut rtt_sum = 0.0;
    let mut rtt_n = 0u64;
    for &p in &probers {
        let prober = built.net.device::<PingHost>(built.host_nodes[p]);
        rtt_sum += prober.rtt.mean() * prober.rtt.count() as f64;
        rtt_n += prober.rtt.count() as u64;
    }
    E5Row {
        config: label,
        jain: jain_index(&loads),
        links_used: used,
        mean_rtt_us: if rtt_n > 0 { rtt_sum / rtt_n as f64 / 1e3 } else { f64::NAN },
        total_frames: loads.iter().sum::<f64>() as u64,
    }
}

/// Run both protocols.
pub fn run(params: &E5Params) -> E5Result {
    let stp_cfg = if params.stp_timer_divisor > 1 {
        StpConfig::scaled_down(params.stp_timer_divisor)
    } else {
        StpConfig::standard()
    };
    E5Result {
        rows: vec![
            run_one(BridgeKind::ArpPath(ArpPathConfig::default()), params, "arp-path"),
            run_one(BridgeKind::Stp(stp_cfg), params, "stp"),
        ],
    }
}

/// Render the paper-style table.
pub fn table(result: &E5Result) -> Table {
    let mut t = Table::new(
        "E5 (§2.2): load distribution across fabric links (grid, crossing flows)",
        &["config", "jain index", "links carrying traffic", "mean RTT (us)", "total frames"],
    );
    for r in &result.rows {
        t.row(&[
            r.config.to_string(),
            format!("{:.3}", r.jain),
            format!("{:.0}%", r.links_used * 100.0),
            format!("{:.2}", r.mean_rtt_us),
            r.total_frames.to_string(),
        ]);
    }
    t
}
