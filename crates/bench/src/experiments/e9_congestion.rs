//! **E9 — congested fabrics: finite queues, PFC backpressure, and
//! closed-loop flows.**
//!
//! E8 established that ARP-Path's race spreads load across a fat-tree's
//! parallel cores when queues are infinite. This experiment asks what
//! the paper's bridges do when the fabric *fills*: the same jittered
//! fat-trees now carry sized go-back-N flows ([`FlowHost`]) under three
//! port-queue regimes —
//!
//! * **infinite** — the E1–E8 default, drop-free and pause-free;
//! * **drop-tail** — 16 KiB per port direction, overflow discards;
//! * **PFC** — lossless pause/resume backpressure at the same 16 KiB
//!   threshold (resume at 8 KiB).
//!
//! Per (k, pattern, mode) the harness reports flow-completion-time
//! percentiles, retransmission and drop counts, pause accounting,
//! queue-depth shape, and the race's core spread — so the table shows
//! both *what congestion costs* (FCT tails under drop-tail, pause time
//! under PFC) and *how ARP-Path's race-based path choice shifts when
//! queues fill* (jain/core-spread per mode: under backpressure the race
//! is decided by queueing delay, not just propagation jitter).
//!
//! Everything is a pure function of [`E9Params`]; same seed ⇒ identical
//! tables, and the delivery trace is byte-identical between the
//! single-threaded and sharded engines (`tests/sharded_equivalence.rs`
//! pins it, pause frames crossing shard cuts included).

use super::e8_fattree::PathWalker;
use super::{host_ip, host_mac};
use arppath::ArpPathConfig;
use arppath_host::{pairings, Aimd, FixedWindow, FlowConfig, FlowHost, TrafficPattern};
use arppath_metrics::{
    jain_index, DiversityCounter, DropCounter, FctSummary, QueueDepthSeries, Table,
};
use arppath_netsim::{
    DeliveryTracer, Dir, DirStats, Endpoint, LinkId, NetworkStats, NodeId, PauseWatchdog,
    QueuePolicy, SimDuration, SimTime,
};
use arppath_topo::{
    generic, BridgeKind, BuiltTopology, FatTree, Partition, ShardedTopology, TopoBuilder,
};
use std::sync::{Arc, Mutex};

/// Per-port-direction byte cap (drop-tail) and PFC pause threshold.
const QUEUE_CAP_BYTES: usize = 16 * 1024;

/// Default pause-watchdog deadline for the PFC regime. Well above any
/// pause a *draining* 16 KiB queue can sustain (~131 µs at 1 Gb/s, a
/// couple of ms with pause cascades), so it only ever fires on a
/// genuine cyclic-buffer-dependency deadlock; far below the run
/// horizon, so a wedged incast gets unstuck many times over before the
/// deadline. `tests/watchdog_properties.rs` pins the no-false-positive
/// side empirically.
const WATCHDOG_DEADLINE_MS: u64 = 10;

/// The queueing regime a fabric instance runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueMode {
    /// Unbounded FIFOs — the E1–E8 baseline.
    Infinite,
    /// 16 KiB drop-tail per port direction.
    DropTail,
    /// PFC pause at 16 KiB, resume at 8 KiB — lossless.
    Pfc,
}

impl QueueMode {
    /// All three regimes, in report order.
    pub const ALL: [QueueMode; 3] = [QueueMode::Infinite, QueueMode::DropTail, QueueMode::Pfc];

    /// The link-level policy this mode stamps over the fabric.
    pub fn policy(self) -> QueuePolicy {
        match self {
            QueueMode::Infinite => QueuePolicy::Infinite,
            QueueMode::DropTail => QueuePolicy::drop_tail(QUEUE_CAP_BYTES),
            QueueMode::Pfc => QueuePolicy::pfc(QUEUE_CAP_BYTES),
        }
    }

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            QueueMode::Infinite => "infinite",
            QueueMode::DropTail => "drop-tail",
            QueueMode::Pfc => "pfc",
        }
    }
}

/// The congestion controller every sender runs — the second axis of
/// the E9 grid since the PFC deadlock fix: a fixed window that keeps
/// pushing into a wedged fabric, versus AIMD senders that back off on
/// timeout and so mostly keep the fabric out of the deadlock region in
/// the first place (the watchdog stays as the backstop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcMode {
    /// `FixedWindow(8)` — the pre-PR-7 sender, window never moves.
    Fixed,
    /// [`Aimd`] from 2 segments, +1 per ack round, halved on timeout.
    Aimd,
}

impl CcMode {
    /// Both controllers, in report order.
    pub const ALL: [CcMode; 2] = [CcMode::Fixed, CcMode::Aimd];

    /// A fresh controller instance for one sender.
    pub fn controller(self) -> Box<dyn arppath_host::CongestionControl> {
        match self {
            CcMode::Fixed => Box::new(FixedWindow(8)),
            CcMode::Aimd => Box::new(Aimd::new(2, 64)),
        }
    }

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            CcMode::Fixed => "fixed",
            CcMode::Aimd => "aimd",
        }
    }
}

/// Parameters of one E9 run (one fabric size, all modes × patterns).
#[derive(Debug, Clone, Copy)]
pub struct E9Params {
    /// Fat-tree arity (even).
    pub k: usize,
    /// Hosts attached per edge switch.
    pub hosts_per_edge: usize,
    /// Segments per flow (each host sends one sized flow).
    pub segments: u64,
    /// UDP payload bytes per segment.
    pub segment_len: usize,
    /// Workload + jitter seed.
    pub seed: u64,
    /// Hot receivers for the incast pattern.
    pub hot_receivers: usize,
    /// Worker threads; `1` = single-threaded engine, `≥ 2` = sharded
    /// (rack-major, clamped to `k` like E8).
    pub shards: usize,
    /// Pause watchdog stamped over the PFC regime's links (the other
    /// regimes never pause, so it is not armed there). `Off` reproduces
    /// the PR-6 deadlock.
    pub watchdog: PauseWatchdog,
}

impl Default for E9Params {
    fn default() -> Self {
        E9Params {
            k: 4,
            hosts_per_edge: 4,
            segments: 32,
            segment_len: 700,
            seed: 0xE9,
            hot_receivers: 2,
            shards: 1,
            watchdog: PauseWatchdog::force_resume(SimDuration::millis(WATCHDOG_DEADLINE_MS)),
        }
    }
}

/// One (pattern, mode) cell of the congestion study.
#[derive(Debug, Clone)]
pub struct E9Row {
    /// `"permutation"` or `"hotspot"`.
    pub pattern: &'static str,
    /// Queueing regime label.
    pub mode: &'static str,
    /// Congestion-controller label (`"fixed"` or `"aimd"`).
    pub cc: &'static str,
    /// Fat-tree arity.
    pub k: usize,
    /// Hosts attached (= flows offered).
    pub hosts: usize,
    /// Flow-completion times (incomplete-at-deadline counted apart).
    pub fct: FctSummary,
    /// Go-back-N retransmissions summed over all senders.
    pub retransmits: u64,
    /// Labelled drop counts fabric-wide.
    pub drops: DropCounter,
    /// Pause assertions observed across all link directions.
    pub pause_events: u64,
    /// Pause-watchdog fires fabric-wide (stuck pauses broken).
    pub watchdog_fires: u64,
    /// Total paused time across all link directions, nanoseconds.
    pub pause_time_ns: u64,
    /// High-water queue depth across all link directions, bytes.
    pub peak_queue_bytes: u64,
    /// Fabric-wide queued bytes over time (single-engine runs; empty
    /// when sharded — per-shard queues aren't sampled mid-run).
    pub depth: QueueDepthSeries,
    /// Distinct core switches crossed by at least one learned path.
    pub distinct_cores: usize,
    /// Core switches in the fabric.
    pub total_cores: usize,
    /// Jain fairness of per-core-link byte loads.
    pub jain_core: f64,
}

/// Full E9 output for one fabric size: `patterns × modes` rows.
#[derive(Debug, Clone)]
pub struct E9Result {
    /// Rows in (pattern, mode) order: permutation then hotspot, each
    /// infinite/drop-tail/pfc.
    pub rows: Vec<E9Row>,
}

enum Fabric {
    Single(Box<BuiltTopology>),
    Sharded(Box<ShardedTopology>),
}

impl Fabric {
    fn run_until(&mut self, until: SimTime) {
        match self {
            Fabric::Single(b) => b.net.run_until(until),
            Fabric::Sharded(s) => s.net.run_until(until),
        }
    }

    fn now(&self) -> SimTime {
        match self {
            Fabric::Single(b) => b.net.now(),
            Fabric::Sharded(s) => s.net.now(),
        }
    }

    fn host_nodes(&self) -> &[NodeId] {
        match self {
            Fabric::Single(b) => &b.host_nodes,
            Fabric::Sharded(s) => &s.host_nodes,
        }
    }

    fn bridge_nodes(&self) -> &[NodeId] {
        match self {
            Fabric::Single(b) => &b.bridge_nodes,
            Fabric::Sharded(s) => &s.bridge_nodes,
        }
    }

    fn all_links(&self) -> Vec<LinkId> {
        let (bl, hl) = match self {
            Fabric::Single(b) => (&b.bridge_links, &b.host_links),
            Fabric::Sharded(s) => (&s.bridge_links, &s.host_links),
        };
        bl.iter().chain(hl.iter()).copied().collect()
    }

    fn bridge_links(&self) -> &[LinkId] {
        match self {
            Fabric::Single(b) => &b.bridge_links,
            Fabric::Sharded(s) => &s.bridge_links,
        }
    }

    fn link_endpoints(&self, l: LinkId) -> (Endpoint, Endpoint) {
        match self {
            Fabric::Single(b) => {
                let lk = b.net.link(l);
                (lk.a, lk.b)
            }
            Fabric::Sharded(s) => s.net.link_endpoints(l),
        }
    }

    fn link_stats(&self, l: LinkId, dir: Dir) -> DirStats {
        match self {
            Fabric::Single(b) => b.net.link(l).stats(dir),
            Fabric::Sharded(s) => s.net.link_stats(l, dir),
        }
    }

    /// Pause time including a still-open pause interval at `now` — a
    /// deadlocked direction stays paused through the deadline and
    /// would otherwise report zero.
    fn link_paused_for(&self, l: LinkId, dir: Dir, now: SimTime) -> SimDuration {
        match self {
            Fabric::Single(b) => b.net.link(l).paused_for(dir, now),
            Fabric::Sharded(s) => s.net.link_paused_for(l, dir, now),
        }
    }

    fn stats(&self) -> NetworkStats {
        match self {
            Fabric::Single(b) => b.net.stats(),
            Fabric::Sharded(s) => s.net.stats(),
        }
    }

    fn flow_host(&self, node: NodeId) -> &FlowHost {
        match self {
            Fabric::Single(b) => b.net.device::<FlowHost>(node),
            Fabric::Sharded(s) => s.net.device::<FlowHost>(node),
        }
    }
}

/// Lay out one E9 scenario: the E8 jittered fabric, one sized
/// go-back-N flow per host under `cc`'s controller, and the mode's
/// queue policy (plus, for PFC, the pause watchdog) stamped over every
/// link — fabric cables and host attachments alike. Shared by the
/// measurement run, the delivery-trace capture, and the differential
/// fuzzer (`crate::difftest`), which varies the partition on top.
pub(crate) fn scenario(
    params: &E9Params,
    mode: QueueMode,
    cc: CcMode,
    pattern: TrafficPattern,
) -> (TopoBuilder, FatTree, Vec<usize>, SimTime) {
    // Path-table geometry is derived from the host count by
    // TopoBuilder at build time (see E8's scenario note).
    let mut t = TopoBuilder::new(BridgeKind::ArpPath(ArpPathConfig::default()));
    // Same jitter derivation as E8: one seed pins the whole scenario.
    let ft = generic::fat_tree_jittered(&mut t, params.k, params.seed.wrapping_add(0xFA7));
    let n = ft.host_capacity(params.hosts_per_edge);
    let pairs = pairings(n, pattern, params.seed);

    let warmup = SimDuration::millis(100);
    // Tighter stagger than E8's open-loop workload: closed-loop flows
    // are short (window-clocked), so congestion requires them to
    // actually overlap. 11 µs still keeps ARP floods off one another's
    // timestamps.
    let stagger = SimDuration::micros(11);
    for (i, &dst) in pairs.iter().enumerate() {
        let id = (i + 1) as u32;
        let cfg = FlowConfig {
            target: Some(host_ip((dst + 1) as u32)),
            start_at: warmup + stagger.times(i as u64),
            segments: params.segments,
            segment_len: params.segment_len,
            rto: SimDuration::millis(5),
            ..FlowConfig::default()
        };
        let host = FlowHost::with_controller(
            format!("h{id}"),
            host_mac(id),
            host_ip(id),
            cfg,
            cc.controller(),
        );
        t.host(ft.edge_of_host(i, params.hosts_per_edge), Box::new(host));
    }
    // Stamp the regime over everything declared above. Only the PFC
    // regime arms the watchdog: the other modes never pause, and
    // keeping their link parameters untouched keeps their traces
    // byte-identical to PR 6's.
    t.set_queue_policy(mode.policy());
    if mode == QueueMode::Pfc {
        t.set_watchdog(params.watchdog);
    }

    // Horizon: enough for heavy go-back-N recovery under incast;
    // stragglers are *counted* (FctSummary::incomplete), not hidden.
    let deadline = warmup + stagger.times(n as u64) + SimDuration::millis(400);
    (t, ft, pairs, SimTime(deadline.as_nanos()))
}

fn instantiate(params: &E9Params, t: TopoBuilder, ft: &FatTree, trace: bool) -> Fabric {
    let shards = params.shards.min(ft.k);
    if shards > 1 {
        let hosts = ft.host_capacity(params.hosts_per_edge);
        let partition = Partition::rack_major(ft, params.hosts_per_edge, hosts, shards);
        Fabric::Sharded(Box::new(t.build_sharded(&partition, trace)))
    } else {
        Fabric::Single(Box::new(t.build()))
    }
}

/// Table label for a workload pattern.
fn pattern_label(pattern: TrafficPattern) -> &'static str {
    match pattern {
        TrafficPattern::Permutation => "permutation",
        TrafficPattern::Hotspot { .. } => "hotspot",
    }
}

/// Measure one (mode, cc, pattern) cell. Public so the watchdog
/// property tests can probe individual cells (fires, drops,
/// completion) without paying for the full grid.
pub fn run_cell(params: &E9Params, mode: QueueMode, cc: CcMode, pattern: TrafficPattern) -> E9Row {
    let label = pattern_label(pattern);
    let (t, ft, pairs, deadline) = scenario(params, mode, cc, pattern);
    let n = pairs.len();
    let mut fabric = instantiate(params, t, &ft, false);

    // Drive the run in slices, sampling fabric-wide queued bytes on a
    // fixed cadence (single-engine only; slicing is behaviorally
    // identical to one run_until — the event order is unchanged).
    let mut depth = QueueDepthSeries::new();
    match &mut fabric {
        Fabric::Single(b) => {
            // A 16 KiB queue drains in ~131 us at 1 Gb/s, so the
            // cadence must be well below that to see occupancy at all.
            let tick = SimDuration::micros(50);
            let links = [b.bridge_links.clone(), b.host_links.clone()].concat();
            let mut at = SimTime(tick.as_nanos());
            while at < deadline {
                b.net.run_until(at);
                let queued: u64 = links
                    .iter()
                    .flat_map(|&l| {
                        [Dir::AtoB, Dir::BtoA].map(|d| b.net.link(l).queue_depth(d).1 as u64)
                    })
                    .sum();
                depth.push(at.as_nanos(), queued);
                at += tick;
            }
            b.net.run_until(deadline);
        }
        _ => fabric.run_until(deadline),
    }
    let now = fabric.now();

    // Flow completion, per sender.
    let mut fct = FctSummary::new();
    let mut retransmits = 0u64;
    for &h in fabric.host_nodes() {
        let host = fabric.flow_host(h);
        retransmits += host.retransmits;
        match host.fct {
            Some(d) => fct.record(d.as_nanos()),
            None => fct.record_incomplete(),
        }
    }

    // Drop + pause accounting.
    let stats = fabric.stats();
    let mut drops = DropCounter::new();
    drops.add("queue_full", stats.drops_queue_full);
    drops.add("link_down", stats.drops_link_down);
    drops.add("watchdog", stats.drops_watchdog);
    let mut pause_events = 0u64;
    let mut pause_time_ns = 0u64;
    let mut peak_queue_bytes = 0u64;
    for l in fabric.all_links() {
        for dir in [Dir::AtoB, Dir::BtoA] {
            let s = fabric.link_stats(l, dir);
            pause_events += s.pause_events;
            pause_time_ns += fabric.link_paused_for(l, dir, now).as_nanos();
            peak_queue_bytes = peak_queue_bytes.max(s.peak_queue_bytes);
        }
    }

    // Core spread of the learned paths (the path-shift observable).
    let core_nodes: Vec<NodeId> = ft.core.iter().map(|&c| fabric.bridge_nodes()[c.0]).collect();
    let core_loads: Vec<f64> = fabric
        .bridge_links()
        .iter()
        .filter_map(|&l| {
            let (a, b) = fabric.link_endpoints(l);
            let is_core = core_nodes.contains(&a.node) || core_nodes.contains(&b.node);
            is_core.then(|| {
                (fabric.link_stats(l, Dir::AtoB).tx_bytes
                    + fabric.link_stats(l, Dir::BtoA).tx_bytes) as f64
            })
        })
        .collect();
    let mut diversity = DiversityCounter::new();
    let walker = match &fabric {
        Fabric::Single(b) => PathWalker::new(b),
        Fabric::Sharded(s) => PathWalker::new_sharded(s),
    };
    for (i, &dst) in pairs.iter().enumerate() {
        let from = ft.edge_of_host(i, params.hosts_per_edge);
        let path = walker.walk(from, host_mac((dst + 1) as u32), now);
        for b in &path {
            if ft.is_core(*b) {
                diversity.record(i as u64, b.0 as u64);
            }
        }
    }

    E9Row {
        pattern: label,
        mode: mode.label(),
        cc: cc.label(),
        k: params.k,
        hosts: n,
        fct,
        retransmits,
        drops,
        pause_events,
        watchdog_fires: stats.watchdog_fires,
        pause_time_ns,
        peak_queue_bytes,
        depth,
        distinct_cores: diversity.distinct_items(),
        total_cores: ft.core.len(),
        jain_core: jain_index(&core_loads),
    }
}

/// The merged, timestamp-sorted delivery trace of one (mode, pattern)
/// run — the byte-comparable artifact CI diffs between the
/// single-threaded and sharded engines. With PFC this includes every
/// pause/resume control frame's delivery, so the comparison also pins
/// backpressure crossing shard cuts.
pub fn delivery_trace(params: &E9Params, mode: QueueMode, pattern: TrafficPattern) -> Vec<String> {
    delivery_trace_cc(params, mode, CcMode::Fixed, pattern)
}

/// [`delivery_trace`] with an explicit congestion controller — the
/// sharded watchdog fire-order test captures the AIMD grid cells too.
pub fn delivery_trace_cc(
    params: &E9Params,
    mode: QueueMode,
    cc: CcMode,
    pattern: TrafficPattern,
) -> Vec<String> {
    let (t, ft, _pairs, deadline) = scenario(params, mode, cc, pattern);
    if params.shards > 1 {
        let mut topo = match instantiate(params, t, &ft, true) {
            Fabric::Sharded(s) => s,
            Fabric::Single(_) => unreachable!("shards > 1 builds sharded"),
        };
        topo.net.run_until(deadline);
        topo.net.delivery_trace()
    } else {
        let sink = Arc::new(Mutex::new(DeliveryTracer::new()));
        let mut t = t;
        t.set_tracer(Box::new(sink.clone()));
        let mut built = t.build();
        built.net.run_until(deadline);
        let records = std::mem::take(&mut sink.lock().unwrap().records);
        DeliveryTracer::render_sorted(records)
    }
}

/// Run all modes × both patterns × both controllers on one fabric
/// size.
pub fn run(params: &E9Params) -> E9Result {
    run_with(params, &CcMode::ALL)
}

/// [`run`] restricted to the given controllers (the `repro` CLI's
/// `--e9-cc` filter).
pub fn run_with(params: &E9Params, ccs: &[CcMode]) -> E9Result {
    let mut rows = Vec::new();
    for pattern in [
        TrafficPattern::Permutation,
        TrafficPattern::Hotspot { hot_receivers: params.hot_receivers },
    ] {
        for mode in QueueMode::ALL {
            for &cc in ccs {
                rows.push(run_cell(params, mode, cc, pattern));
            }
        }
    }
    E9Result { rows }
}

/// Render the congestion summary across fabric sizes.
pub fn table(results: &[E9Result]) -> Table {
    let mut t = Table::new(
        "E9: congested fabrics — FCT, drops and pause time per queueing mode",
        &[
            "k",
            "pattern",
            "mode",
            "cc",
            "flows",
            "done",
            "fct p50 (ms)",
            "fct p99 (ms)",
            "retx",
            "drops",
            "wd fires",
            "pause (ms)",
            "peak q (B)",
            "cores used",
            "jain (core)",
        ],
    );
    for result in results {
        for r in &result.rows {
            let done = if r.fct.incomplete() > 0 {
                format!("{}/{}", r.fct.completed(), r.hosts)
            } else {
                r.fct.completed().to_string()
            };
            t.row(&[
                r.k.to_string(),
                r.pattern.to_string(),
                r.mode.to_string(),
                r.cc.to_string(),
                r.hosts.to_string(),
                done,
                format!("{:.3}", r.fct.percentile(50.0) as f64 / 1e6),
                format!("{:.3}", r.fct.percentile(99.0) as f64 / 1e6),
                r.retransmits.to_string(),
                r.drops.get("queue_full").to_string(),
                r.watchdog_fires.to_string(),
                format!("{:.3}", r.pause_time_ns as f64 / 1e6),
                r.peak_queue_bytes.to_string(),
                format!("{}/{}", r.distinct_cores, r.total_cores),
                format!("{:.3}", r.jain_core),
            ]);
        }
    }
    t
}

/// The FixedWindow-vs-AIMD comparison, one row per congested regime:
/// the committed evidence (and CI gate input) behind "AIMD shows a
/// lower p99 FCT than the fixed window in at least one congested
/// regime".
pub fn fct_comparison_table(results: &[E9Result]) -> Table {
    let mut t = Table::new(
        "E9: FixedWindow vs AIMD flow-completion times per congested regime",
        &[
            "k",
            "pattern",
            "mode",
            "fixed p50 (ms)",
            "fixed p99 (ms)",
            "aimd p50 (ms)",
            "aimd p99 (ms)",
            "aimd wins p99",
        ],
    );
    let ms = |ns: u64| format!("{:.3}", ns as f64 / 1e6);
    for (fixed, aimd) in regime_pairs(results) {
        t.row(&[
            fixed.k.to_string(),
            fixed.pattern.to_string(),
            fixed.mode.to_string(),
            ms(fixed.fct.percentile(50.0)),
            ms(fixed.fct.percentile(99.0)),
            ms(aimd.fct.percentile(50.0)),
            ms(aimd.fct.percentile(99.0)),
            if aimd_beats_fixed(fixed, aimd) { "yes" } else { "no" }.to_string(),
        ]);
    }
    t
}

/// Pair up fixed/aimd rows of the same congested (k, pattern, mode)
/// regime, across all fabric sizes. Infinite-queue rows are excluded:
/// nothing is congested there, so the comparison says nothing.
fn regime_pairs(results: &[E9Result]) -> Vec<(&E9Row, &E9Row)> {
    let mut pairs = Vec::new();
    for result in results {
        for fixed in result.rows.iter().filter(|r| r.cc == "fixed" && r.mode != "infinite") {
            let aimd = result.rows.iter().find(|r| {
                r.cc == "aimd"
                    && r.mode == fixed.mode
                    && r.pattern == fixed.pattern
                    && r.k == fixed.k
            });
            if let Some(aimd) = aimd {
                pairs.push((fixed, aimd));
            }
        }
    }
    pairs
}

/// `aimd` strictly improves on `fixed` in this regime: every AIMD flow
/// completed and the p99 FCT is strictly lower.
fn aimd_beats_fixed(fixed: &E9Row, aimd: &E9Row) -> bool {
    aimd.fct.incomplete() == 0
        && aimd.fct.completed() > 0
        && aimd.fct.percentile(99.0) < fixed.fct.percentile(99.0)
}

/// The tentpole gate: every PFC row — incast at k = 8 included — ends
/// with **all flows complete and zero drops**, under both controllers.
/// The watchdog may fire (that's its job); fires are counted in the
/// table, not hidden.
pub fn verify_pfc_lossless_completion(results: &[E9Result]) -> bool {
    results.iter().all(|result| {
        result.rows.iter().filter(|r| r.mode == "pfc").all(|r| {
            r.fct.incomplete() == 0
                && r.fct.completed() == r.hosts as u64
                && r.drops.get("queue_full") == 0
                && r.drops.get("watchdog") == 0
        })
    })
}

/// The AIMD gate: at least one congested regime where AIMD's p99 FCT
/// strictly beats the fixed window's.
pub fn verify_aimd_beats_fixed_somewhere(results: &[E9Result]) -> bool {
    regime_pairs(results).iter().any(|(fixed, aimd)| aimd_beats_fixed(fixed, aimd))
}

/// Render the queue-depth shape per mode for one fabric size (max and
/// time-weighted mean of fabric-wide queued bytes; single-engine runs).
pub fn depth_table(result: &E9Result) -> Table {
    let k = result.rows.first().map(|r| r.k).unwrap_or(0);
    let mut t = Table::new(
        format!("E9: fabric-wide queued bytes over time, k={k}"),
        &["pattern", "mode", "cc", "samples", "max (B)", "mean (B)", "time>cap (ms)"],
    );
    for r in &result.rows {
        t.row(&[
            r.pattern.to_string(),
            r.mode.to_string(),
            r.cc.to_string(),
            r.depth.len().to_string(),
            r.depth.max_bytes().to_string(),
            format!("{:.0}", r.depth.mean_bytes()),
            format!("{:.3}", r.depth.time_above(QUEUE_CAP_BYTES as u64) as f64 / 1e6),
        ]);
    }
    t
}

/// The acceptance gate: at the same offered load, per fabric size —
///
/// * the infinite baseline neither drops nor pauses,
/// * drop-tail drops (the load is genuinely past the cap),
/// * PFC drops **nothing** and its pause accounting is nonzero (the
///   backpressure did the work the drops would have done).
pub fn verify_congestion(results: &[E9Result]) -> bool {
    results.iter().all(|result| {
        let total = |mode: &str, f: &dyn Fn(&E9Row) -> u64| -> u64 {
            result.rows.iter().filter(|r| r.mode == mode).map(f).sum()
        };
        let drops = |mode: &str| total(mode, &|r| r.drops.get("queue_full"));
        drops("infinite") == 0
            && total("infinite", &|r| r.pause_events) == 0
            && drops("drop-tail") > 0
            && drops("pfc") == 0
            && total("pfc", &|r| r.pause_time_ns) > 0
    })
}
