//! **E7 — design ablations: lock timer and hardware table size.**
//!
//! Two knobs the NetFPGA implementation had to choose and the paper's
//! §2.1.1 design implies:
//!
//! * the **lock timer** must outlive the ARP round trip (or the reply
//!   finds no lock and the path never confirms) and stay well under
//!   the learning timer (or stale locks block re-discovery);
//! * the **hardware table** bounds how many stations can hold locks /
//!   paths; overflow forces drops (the safe overflow policy) and
//!   repairs.
//!
//! Both sweeps run the Fig-2 ping scenario and report delivery health.

use super::{attach_ping_pair, host_mac};
use arppath::ArpPathConfig;
use arppath_host::{PingConfig, PingHost};
use arppath_metrics::Table;
use arppath_netfpga::NetFpgaParams;
use arppath_netsim::{SimDuration, SimTime};
use arppath_topo::{BridgeIx, BridgeKind, Fig2, TopoBuilder};

/// Parameters of the ablation sweeps.
#[derive(Debug, Clone, Copy)]
pub struct E7Params {
    /// Ping probes per configuration.
    pub probes: u64,
    /// Lock timer values to sweep (µs).
    pub lock_us: [u64; 5],
    /// Hardware table capacities to sweep.
    pub capacities: [usize; 4],
    /// Extra host pairs for the capacity sweep (table pressure).
    pub pressure_pairs: u32,
}

impl Default for E7Params {
    fn default() -> Self {
        E7Params {
            probes: 50,
            // The Fig-2 ARP RTT is ~20 µs; a 10 µs lock dies before
            // the reply returns.
            lock_us: [10, 50, 500, 50_000, 500_000],
            capacities: [2, 8, 64, 512],
            pressure_pairs: 6,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone)]
pub struct E7Row {
    /// Description of the point.
    pub config: String,
    /// Probes delivered / sent.
    pub delivered: u64,
    /// Probes sent.
    pub sent: u64,
    /// Repairs initiated fabric-wide.
    pub repairs: u64,
    /// Table-full rejections fabric-wide.
    pub table_full: u64,
    /// Median RTT (µs), NaN when nothing delivered.
    pub median_rtt_us: f64,
}

/// Full E7 output.
#[derive(Debug, Clone)]
pub struct E7Result {
    /// Lock-timer sweep rows then capacity sweep rows.
    pub rows: Vec<E7Row>,
}

fn run_point(cfg: ArpPathConfig, label: String, probes: u64, pressure_pairs: u32) -> E7Row {
    let mut t = TopoBuilder::new(BridgeKind::ArpPathNetFpga(cfg, NetFpgaParams::default()));
    let fig = Fig2::build(&mut t);
    let ping_cfg = PingConfig {
        start_at: SimDuration::millis(100),
        interval: SimDuration::millis(10),
        count: probes,
        ..Default::default()
    };
    let (p_ix, _) = attach_ping_pair(&mut t, fig.nic_a, fig.nic_b, 1, 2, ping_cfg);
    // Table pressure: extra chatty pairs across the fabric.
    let mut id = 10u32;
    for i in 0..pressure_pairs {
        let a = fig.all_bridges()[i as usize % 4];
        let b = fig.all_bridges()[(i as usize + 2) % 4];
        let cfg = PingConfig {
            start_at: SimDuration::millis(50 + 5 * i as u64),
            interval: SimDuration::millis(20),
            count: probes / 2,
            ..Default::default()
        };
        attach_ping_pair(&mut t, a, b, id, id + 1, cfg);
        id += 2;
    }
    let mut built = t.build();
    built.net.run_until(SimTime(SimDuration::secs(3).as_nanos()));
    let mut repairs = 0;
    let mut table_full = 0;
    for i in 0..6 {
        let ap = built.arppath(BridgeIx(i)).ap_counters();
        repairs += ap.repairs_initiated;
        table_full += ap.table_full_rejections;
    }
    let prober = built.net.device::<PingHost>(built.host_nodes[p_ix]);
    let rtt = prober.rtt.clone();
    E7Row {
        config: label,
        delivered: prober.received,
        sent: prober.sent(),
        repairs,
        table_full,
        median_rtt_us: if rtt.is_empty() { f64::NAN } else { rtt.percentile(50.0) as f64 / 1e3 },
    }
}

/// Run both sweeps.
pub fn run(params: &E7Params) -> E7Result {
    let mut rows = Vec::new();
    for &us in &params.lock_us {
        let cfg = ArpPathConfig { lock_time: SimDuration::micros(us), ..Default::default() };
        rows.push(run_point(cfg, format!("lock={us}us"), params.probes, 0));
    }
    for &cap in &params.capacities {
        let cfg = ArpPathConfig::default().with_table_capacity(cap);
        rows.push(run_point(cfg, format!("table={cap}"), params.probes, params.pressure_pairs));
    }
    E7Result { rows }
}

/// Render the paper-style table.
pub fn table(result: &E7Result) -> Table {
    let mut t = Table::new(
        "E7: ablations — lock timer and hardware table capacity (Fig. 2 fabric)",
        &["config", "delivered", "sent", "repairs", "table-full drops", "median RTT (us)"],
    );
    for r in &result.rows {
        t.row(&[
            r.config.clone(),
            r.delivered.to_string(),
            r.sent.to_string(),
            r.repairs.to_string(),
            r.table_full.to_string(),
            if r.median_rtt_us.is_nan() { "-".into() } else { format!("{:.2}", r.median_rtt_us) },
        ]);
    }
    t
}

/// Sanity handle used by tests: host MAC of the prober (kept here so
/// the module's addressing convention has one source of truth).
pub fn prober_mac() -> arppath_wire::MacAddr {
    host_mac(1)
}
