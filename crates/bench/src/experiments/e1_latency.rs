//! **E1 — §3.1 / Figure 2: ARP-Path vs STP path latency.**
//!
//! The demo's headline: on the 4-NetFPGA + 2-NIC fabric, ARP-Path's
//! race finds the minimum-latency path between hosts A and B, while
//! STP confines traffic to a tree rooted at an (arbitrary) bridge and
//! pays detours. We ping A→B under ARP-Path once and under STP once
//! per possible root, and report the RTT distributions.

use super::{attach_ping_pair, stp_convergence_time};
use arppath::ArpPathConfig;
use arppath_host::{PingConfig, PingHost};
use arppath_metrics::{LatencyStats, Table};
use arppath_netfpga::NetFpgaParams;
use arppath_netsim::{SimDuration, SimTime};
use arppath_stp::StpConfig;
use arppath_topo::{BridgeKind, Fig2, TopoBuilder};

/// Parameters of one E1 run.
#[derive(Debug, Clone, Copy)]
pub struct E1Params {
    /// Ping probes per configuration.
    pub probes: u64,
    /// Per-link propagation delays (µs) in Fig-2 wiring order.
    pub link_delays_us: [u64; 8],
    /// Use the NetFPGA pipeline timing (the demo's configuration) or
    /// the ideal model.
    pub netfpga_timing: bool,
}

impl Default for E1Params {
    fn default() -> Self {
        E1Params {
            probes: 100,
            // Heterogeneous delays: the minimum-latency A↔B route is
            // NICA—NF2—NF3—NICB (1+2+1 µs); the NICA—NF1 and NICB—NF4
            // "short-cut looking" links are actually slow (5 µs).
            link_delays_us: [5, 1, 1, 1, 2, 1, 1, 5],
            netfpga_timing: true,
        }
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// `"arp-path"` or `"stp(root=X)"`.
    pub config: String,
    /// RTT samples.
    pub rtt: LatencyStats,
    /// Probes lost.
    pub lost: u64,
}

/// Full E1 output.
#[derive(Debug, Clone)]
pub struct E1Result {
    /// ARP-Path first, then one row per STP root placement.
    pub rows: Vec<E1Row>,
}

fn run_one(kind: BridgeKind, params: &E1Params, root: Option<usize>) -> E1Row {
    let mut t = TopoBuilder::new(kind);
    let fig = Fig2::build_with_delays(&mut t, &params.link_delays_us);
    if let Some(r) = root {
        t.stp_priority(fig.all_bridges()[r], 0x1000);
    }
    let warmup = match kind {
        BridgeKind::Stp(_) | BridgeKind::StpNetFpga(..) => stp_convergence_time(),
        _ => SimDuration::millis(100),
    };
    let ping_cfg = PingConfig {
        start_at: warmup,
        interval: SimDuration::millis(10),
        count: params.probes,
        ..Default::default()
    };
    let (p_ix, _r_ix) = attach_ping_pair(&mut t, fig.nic_a, fig.nic_b, 1, 2, ping_cfg);
    let mut built = t.build();
    let deadline = warmup + SimDuration::millis(10).times(params.probes + 50);
    built.net.run_until(SimTime(deadline.as_nanos()));
    let prober = built.net.device::<PingHost>(built.host_nodes[p_ix]);
    let label = match root {
        None => "arp-path".to_string(),
        Some(r) => format!("stp(root={})", ["NF1", "NF2", "NF3", "NF4", "NICA", "NICB"][r]),
    };
    E1Row {
        config: label,
        rtt: prober.rtt.clone(),
        lost: prober.sent().saturating_sub(prober.received),
    }
}

/// Run the full experiment.
pub fn run(params: &E1Params) -> E1Result {
    let ap_kind = if params.netfpga_timing {
        BridgeKind::ArpPathNetFpga(ArpPathConfig::default(), NetFpgaParams::default())
    } else {
        BridgeKind::ArpPath(ArpPathConfig::default())
    };
    let stp_kind = |_: usize| {
        if params.netfpga_timing {
            BridgeKind::StpNetFpga(StpConfig::standard(), NetFpgaParams::default())
        } else {
            BridgeKind::Stp(StpConfig::standard())
        }
    };
    let mut rows = vec![run_one(ap_kind, params, None)];
    for root in 0..6 {
        rows.push(run_one(stp_kind(root), params, Some(root)));
    }
    E1Result { rows }
}

/// Render the paper-style table.
pub fn table(result: &E1Result) -> Table {
    let mut t = Table::new(
        "E1 (Fig. 2, §3.1): A↔B ping RTT, ARP-Path vs STP per root placement",
        &["config", "n", "min (us)", "p50 (us)", "p99 (us)", "max (us)", "lost"],
    );
    for row in &result.rows {
        let n = row.rtt.count();
        t.row(&[
            row.config.clone(),
            n.to_string(),
            format!("{:.2}", row.rtt.min() as f64 / 1e3),
            format!("{:.2}", row.rtt.percentile(50.0) as f64 / 1e3),
            format!("{:.2}", row.rtt.percentile(99.0) as f64 / 1e3),
            format!("{:.2}", row.rtt.max() as f64 / 1e3),
            row.lost.to_string(),
        ]);
    }
    t
}

/// The headline check: ARP-Path's median RTT is no worse than every
/// STP placement's, and strictly better than the worst one.
pub fn verify_headline(result: &E1Result) -> bool {
    let ap = result.rows[0].rtt.percentile(50.0);
    let stp_medians: Vec<u64> = result.rows[1..].iter().map(|r| r.rtt.percentile(50.0)).collect();
    let all_geq = stp_medians.iter().all(|&s| s >= ap);
    let some_worse = stp_medians.iter().any(|&s| s > ap);
    all_geq && some_worse
}
