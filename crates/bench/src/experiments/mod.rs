//! Experiment implementations, one module per paper anchor.
//!
//! Each experiment is a plain function from a parameter struct to a
//! result struct, plus a `table()` renderer — so the `repro` binary,
//! the integration tests and the Criterion benches all share one
//! implementation.
//!
//! # Numbering: where is E4?
//!
//! The experiment numbers E1–E8 are stable across the repository
//! (README table, `docs/EXPERIMENTS.md`, the `repro` binary, CI), and
//! **E4 is deliberately absent from this module list**: it is the
//! paper's Figure 1 *discovery walkthrough* — a step-by-step assertion
//! suite over one ARP exchange, not a parameterized run that produces
//! a table. It lives as the integration suite
//! `tests/fig1_walkthrough.rs` (and the `quickstart` example replays
//! it interactively). Every other number has both a module here and a
//! `repro` subcommand.

pub mod e11_churn;
pub mod e12_scale;
pub mod e1_latency;
pub mod e2_repair;
pub mod e3_linerate;
pub mod e5_load;
pub mod e6_proxy;
pub mod e7_ablation;
pub mod e8_fattree;
pub mod e9_congestion;

use arppath_host::{PingConfig, PingHost};
use arppath_netsim::{NodeId, SimDuration};
use arppath_topo::{BridgeIx, TopoBuilder};
use arppath_wire::MacAddr;
use std::net::Ipv4Addr;

/// Host addressing convention used across experiments: host `i` gets
/// MAC `02:01::i` and IP `10.0.x.y`.
pub fn host_mac(i: u32) -> MacAddr {
    MacAddr::from_index(1, i)
}

/// IP of host `i` (supports up to 2^16 hosts).
pub fn host_ip(i: u32) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, (i >> 8) as u8, (i & 0xff) as u8)
}

/// Attach a probing ping host and its responder peer to two bridges.
/// Returns the prober's host index so callers can read its samples
/// after the run (`built.host_nodes[ix]`).
pub fn attach_ping_pair(
    t: &mut TopoBuilder,
    prober_bridge: BridgeIx,
    responder_bridge: BridgeIx,
    prober_host_id: u32,
    responder_host_id: u32,
    cfg: PingConfig,
) -> (usize, usize) {
    let prober = PingHost::new(
        format!("h{prober_host_id}"),
        host_mac(prober_host_id),
        host_ip(prober_host_id),
        prober_host_id as u16,
        PingConfig { target: host_ip(responder_host_id), ..cfg },
    );
    let responder = PingHost::new(
        format!("h{responder_host_id}"),
        host_mac(responder_host_id),
        host_ip(responder_host_id),
        responder_host_id as u16,
        PingConfig::default(), // pure responder
    );
    let p = t.host(prober_bridge, Box::new(prober));
    let r = t.host(responder_bridge, Box::new(responder));
    (p, r)
}

/// Standard warmup before measurements: lets STP converge with
/// standard timers (two forward delays + margin) and ARP-Path settle
/// its hellos. Experiments that scale timers down scale this too.
pub fn stp_convergence_time() -> SimDuration {
    SimDuration::secs(35)
}

/// Convenience: node handle for the `ix`-th attached host.
pub fn host_node(built: &arppath_topo::BuiltTopology, ix: usize) -> NodeId {
    built.host_nodes[ix]
}
