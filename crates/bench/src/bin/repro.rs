//! Regenerate the paper's experiment tables.
//!
//! ```text
//! cargo run --release -p arppath-bench --bin repro            # all
//! cargo run --release -p arppath-bench --bin repro -- e1 e2   # subset
//! cargo run --release -p arppath-bench --bin repro -- --quick # small params
//! ```
//!
//! Output is the markdown tables described in `docs/EXPERIMENTS.md`.

use arppath_bench::experiments::{
    e1_latency, e2_repair, e3_linerate, e5_load, e6_proxy, e7_ablation, e8_fattree,
};
use arppath_netsim::SimDuration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    if want("e1") {
        eprintln!("[repro] running E1 (Fig. 2 latency, ARP-Path vs STP root sweep)...");
        let params = if quick {
            e1_latency::E1Params { probes: 20, ..Default::default() }
        } else {
            Default::default()
        };
        let mut result = e1_latency::run(&params);
        println!("{}", e1_latency::table(&mut result).render_markdown());
        println!(
            "headline (ARP-Path ≤ every STP placement, < worst): {}\n",
            if e1_latency::verify_headline(&mut result) { "HOLDS" } else { "VIOLATED" }
        );
    }

    if want("e2") {
        eprintln!("[repro] running E2 (Fig. 3 path repair during video stream)...");
        let params = if quick {
            e2_repair::E2Params {
                duration: SimDuration::secs(20),
                failures: [SimDuration::secs(5), SimDuration::secs(12)],
                stp_timer_divisor: 10,
                ..Default::default()
            }
        } else {
            Default::default()
        };
        let result = e2_repair::run(&params);
        println!("{}", e2_repair::table(&result).render_markdown());
        if params.stp_timer_divisor > 1 {
            println!("(STP timers scaled down by {}x in quick mode)\n", params.stp_timer_divisor);
        }
    }

    if want("e3") {
        eprintln!("[repro] running E3 (line-rate frame-size sweep)...");
        let params = if quick {
            e3_linerate::E3Params { frames_per_size: 500, ..Default::default() }
        } else {
            Default::default()
        };
        let result = e3_linerate::run(&params);
        println!("{}", e3_linerate::table(&result).render_markdown());
        println!(
            "line rate sustained at every size: {}\n",
            if e3_linerate::verify_linerate(&result) { "YES" } else { "NO" }
        );
    }

    if want("e5") {
        eprintln!("[repro] running E5 (load distribution on a grid fabric)...");
        let params = if quick {
            e5_load::E5Params { side: 3, probes: 20, stp_timer_divisor: 10 }
        } else {
            Default::default()
        };
        let result = e5_load::run(&params);
        println!("{}", e5_load::table(&result).render_markdown());
    }

    if want("e6") {
        eprintln!("[repro] running E6 (ARP proxy broadcast suppression)...");
        let params = if quick {
            e6_proxy::E6Params { side: 3, clients: 24, servers: 2 }
        } else {
            Default::default()
        };
        let result = e6_proxy::run(&params);
        println!("{}", e6_proxy::table(&result).render_markdown());
        println!(
            "suppression effective: {}\n",
            if e6_proxy::verify_suppression(&result) { "YES" } else { "NO" }
        );
    }

    if want("e7") {
        eprintln!("[repro] running E7 (lock timer / table capacity ablations)...");
        let params = if quick {
            e7_ablation::E7Params { probes: 20, ..Default::default() }
        } else {
            Default::default()
        };
        let result = e7_ablation::run(&params);
        println!("{}", e7_ablation::table(&result).render_markdown());
    }

    if want("e8") {
        // Fabric sweep: hosts_per_edge grows with k so the biggest run
        // carries a four-digit host count (k=8: 32 racks × 32 hosts).
        let ks: &[(usize, usize)] = if quick { &[(4, 2)] } else { &[(4, 16), (6, 24), (8, 32)] };
        let mut results = Vec::new();
        for &(k, hosts_per_edge) in ks {
            eprintln!(
                "[repro] running E8 (fat-tree load balance), k={k}, {} hosts...",
                k * k / 2 * hosts_per_edge
            );
            let params = e8_fattree::E8Params {
                k,
                hosts_per_edge,
                datagrams: if quick { 5 } else { 10 },
                hot_receivers: (k * k / 2 * hosts_per_edge / 32).max(2),
                ..Default::default()
            };
            let started = std::time::Instant::now();
            results.push(e8_fattree::run(&params));
            eprintln!("[repro] e8 k={k} took {} ms (both patterns)", started.elapsed().as_millis());
        }
        println!("{}", e8_fattree::table(&results).render_markdown());
        for r in &results {
            println!("{}", e8_fattree::utilization_table(r).render_markdown());
        }
        println!(
            "permutation spreads over a majority of cores (jain > 0.5, lossless): {}\n",
            if results.iter().all(e8_fattree::verify_spread) { "HOLDS" } else { "VIOLATED" }
        );
    }

    eprintln!("[repro] done.");
}
