//! Regenerate the paper's experiment tables.
//!
//! ```text
//! cargo run --release -p arppath-bench --bin repro            # all
//! cargo run --release -p arppath-bench --bin repro -- e1 e2   # subset
//! cargo run --release -p arppath-bench --bin repro -- --quick # small params
//! cargo run --release -p arppath-bench --bin repro -- e8 --shards 4
//! cargo run --release -p arppath-bench --bin repro -- e8 --quick --trace-out e8.trace
//! cargo run --release -p arppath-bench --bin repro -- --incast-gate
//! cargo run --release -p arppath-bench --bin repro -- e9 --e9-watchdog-ms 0 --e9-cc fixed
//! ```
//!
//! Output is the markdown tables described in `docs/EXPERIMENTS.md`.
//! `--shards N` runs E8 on the sharded parallel engine (N worker
//! threads, rack-major partition); `--trace-out FILE` additionally
//! writes the merged, timestamp-sorted delivery trace of the first E8
//! fabric's permutation run — CI diffs a sharded trace against a
//! single-threaded one to hold the equivalence contract.
//!
//! `--incast-gate` runs just the k=8 PFC incast cells (the scenario
//! that deadlocked before the pause watchdog existed) and exits
//! nonzero unless every flow completes with zero drops.
//! `--e9-watchdog-ms N` overrides the PFC pause-watchdog deadline
//! (0 disables it); `--e9-cc fixed|aimd|both` restricts E9's
//! congestion-controller axis.
//!
//! `repro -- e12` sweeps the k=16 fabric over 1/2/4/8 workers
//! (wall clock, sync rounds per simulated ms, bytes per station) and
//! verifies trace identity across the sweep; `--e12-lookahead
//! matrix|global` picks the window computation (`global` is the PR 4
//! sync-cost baseline), and `--shards`/`--trace-out` capture the
//! byte-comparable trace at one worker count.
//!
//! `--bench-json FILE` additionally writes the machine-readable bench
//! trajectory (schema documented in `BASELINES.md`): per-experiment
//! wall clocks, the quick E9 incast guard (with its per-controller
//! FCT p99s), the quick E11 churn guard (with its undersized eviction
//! count and correction p99), the quick E12 scale guard (with the SoA
//! `dleft_bytes_per_station` figure), plus the fast-table micro
//! medians. The committed `BENCH_PR5.json`/`BENCH_PR7.json`/
//! `BENCH_PR9.json`/`BENCH_PR10.json` are such files; CI re-captures
//! a quick one and gates it with the `bench-guard` subcommand:
//!
//! ```text
//! repro -- bench-guard --baseline BENCH_PR7.json --current ci.json \
//!     --key e9_incast_quick_ms --max-ratio 2
//! ```

use arppath_bench::experiments::{
    e11_churn, e12_scale, e1_latency, e2_repair, e3_linerate, e5_load, e6_proxy, e7_ablation,
    e8_fattree, e9_congestion,
};
use arppath_bench::{difftest, micro};
use arppath_host::TrafficPattern;
use arppath_netsim::{PauseWatchdog, SimDuration};
use std::time::Instant;

/// Extract the number following `"key":` in a (flat-keyed) JSON text.
/// Keys in the bench-trajectory schema are globally unique, so no real
/// JSON parser is needed — and the guard must not grow dependencies.
fn json_number_for_key(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Render one flat JSON object section from key/value pairs.
fn json_section(pairs: &[(String, f64)]) -> String {
    let body: Vec<String> = pairs.iter().map(|(k, v)| format!("    \"{k}\": {v:.3}")).collect();
    body.join(",\n")
}

/// `bench-guard`: compare one key of two bench-trajectory files and
/// fail (exit 1) when the current value exceeds baseline × ratio.
fn bench_guard(mut args: Vec<String>) -> ! {
    let baseline_path = take_value(&mut args, "--baseline").expect("bench-guard needs --baseline");
    let current_path = take_value(&mut args, "--current").expect("bench-guard needs --current");
    let key = take_value(&mut args, "--key").unwrap_or_else(|| "e8_quick_ms".into());
    let ratio: f64 = take_value(&mut args, "--max-ratio")
        .map(|v| v.parse().expect("--max-ratio expects a number"))
        .unwrap_or(2.0);
    let read = |path: &str| {
        std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("bench-guard: cannot read {path}: {e}"))
    };
    let baseline = json_number_for_key(&read(&baseline_path), &key)
        .unwrap_or_else(|| panic!("bench-guard: key {key} missing from {baseline_path}"));
    let current = json_number_for_key(&read(&current_path), &key)
        .unwrap_or_else(|| panic!("bench-guard: key {key} missing from {current_path}"));
    let observed = current / baseline;
    println!(
        "bench-guard: {key} baseline={baseline:.3} current={current:.3} \
         ratio={observed:.2} (max {ratio:.2})"
    );
    if current > baseline * ratio {
        eprintln!("bench-guard: REGRESSION — {key} exceeded the {ratio:.2}x bound");
        std::process::exit(1);
    }
    println!("bench-guard: OK");
    std::process::exit(0);
}

/// `difftest`: the differential shard-equivalence fuzzer. Runs
/// `--seeds N` randomized scenarios (quick fat-tree geometries across
/// every k/jitter/workload/queue/watchdog/shard/partition axis) under
/// the single-threaded and sharded engines and multiset-compares the
/// merged delivery traces. On a failure it delta-debugs the scenario
/// down and prints a one-line reproducer that
/// `tests/sharded_equivalence.rs` replays via `Spec::parse`, then
/// exits 1. `--self-check` instead injects an unsound horizon into the
/// sharded engine and requires the fuzzer to catch and minimize it —
/// proof the harness detects the bug class it exists for.
fn difftest_cmd(mut args: Vec<String>) -> ! {
    let seeds: u64 = take_value(&mut args, "--seeds")
        .map(|v| v.parse().expect("--seeds expects a count"))
        .unwrap_or(32);
    let first_seed: u64 = take_value(&mut args, "--start")
        .map(|v| v.parse().expect("--start expects a seed"))
        .unwrap_or(0);
    let budget: usize = take_value(&mut args, "--minimize-budget")
        .map(|v| v.parse().expect("--minimize-budget expects a count"))
        .unwrap_or(400);
    let self_check = args.iter().any(|a| a == "--self-check");
    let mut log = |line: &str| eprintln!("[difftest] {line}");
    let started = Instant::now();
    if self_check {
        match difftest::self_check(seeds, &mut log) {
            Ok(()) => {
                eprintln!(
                    "[difftest] self-check PASSED in {} ms: injected unsound horizon \
                     detected, minimized, and cleared",
                    started.elapsed().as_millis()
                );
                std::process::exit(0);
            }
            Err(why) => {
                eprintln!("[difftest] self-check FAILED: {why}");
                std::process::exit(1);
            }
        }
    }
    match difftest::fuzz(first_seed, seeds, budget, &mut log) {
        None => {
            eprintln!(
                "[difftest] {seeds} seed(s) from {first_seed}: zero divergences ({} ms)",
                started.elapsed().as_millis()
            );
            std::process::exit(0);
        }
        Some(report) => {
            eprintln!(
                "[difftest] FAILURE minimized in {} attempts ({:?})",
                report.attempts, report.outcome
            );
            // The machine-readable artifact: paste into
            // tests/sharded_equivalence.rs as a Spec::parse literal.
            println!("{}", report.scenario.render());
            std::process::exit(1);
        }
    }
}

/// Pull `--flag value` or `--flag=value` out of `args`, consuming it.
fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    if let Some(i) = args.iter().position(|a| a == flag) {
        assert!(i + 1 < args.len(), "{flag} needs a value");
        let v = args.remove(i + 1);
        args.remove(i);
        return Some(v);
    }
    if let Some(i) = args.iter().position(|a| a.starts_with(&prefix)) {
        let v = args.remove(i)[prefix.len()..].to_string();
        return Some(v);
    }
    None
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench-guard") {
        args.remove(0);
        bench_guard(args);
    }
    if args.first().map(String::as_str) == Some("difftest") {
        args.remove(0);
        difftest_cmd(args);
    }
    let bench_json = take_value(&mut args, "--bench-json");
    let mut wall_ms: Vec<(String, f64)> = Vec::new();
    let shards: usize = take_value(&mut args, "--shards")
        .map(|v| v.parse().expect("--shards expects a number"))
        .unwrap_or(1);
    assert!(shards >= 1, "--shards must be at least 1");
    let trace_out = take_value(&mut args, "--trace-out");
    // E9 knobs: `--e9-watchdog-ms N` overrides the PFC pause-watchdog
    // deadline (0 disables it — reproduces the PR-6 incast deadlock);
    // `--e9-cc fixed|aimd|both` restricts the controller axis.
    let e9_watchdog: Option<u64> = take_value(&mut args, "--e9-watchdog-ms")
        .map(|v| v.parse().expect("--e9-watchdog-ms expects milliseconds"));
    let e9_ccs: Vec<e9_congestion::CcMode> = match take_value(&mut args, "--e9-cc").as_deref() {
        None | Some("both") => e9_congestion::CcMode::ALL.to_vec(),
        Some("fixed") => vec![e9_congestion::CcMode::Fixed],
        Some("aimd") => vec![e9_congestion::CcMode::Aimd],
        Some(other) => panic!("--e9-cc expects fixed|aimd|both, got {other}"),
    };
    let e9_watchdog_param = |default: PauseWatchdog| match e9_watchdog {
        Some(0) => PauseWatchdog::Off,
        Some(ms) => PauseWatchdog::force_resume(SimDuration::millis(ms)),
        None => default,
    };
    // E12 knob: `--e12-lookahead matrix|global` picks the window
    // computation (the global mode is the PR 4 sync-cost baseline).
    let e12_matrix: bool = match take_value(&mut args, "--e12-lookahead").as_deref() {
        None | Some("matrix") => true,
        Some("global") => false,
        Some(other) => panic!("--e12-lookahead expects matrix|global, got {other}"),
    };
    // `--e12-k K` overrides E12's fabric arity; with `--e12-shards
    // a,b,...` it turns the sweep into an arbitrary measurement rig —
    // the matrix-vs-global acceptance numbers in BASELINES.md come
    // from `e12 --e12-k 8 --e12-shards 2 --e12-lookahead <mode>`.
    let e12_k: Option<usize> =
        take_value(&mut args, "--e12-k").map(|v| v.parse().expect("--e12-k expects a number"));
    let e12_shard_counts: Option<Vec<usize>> = take_value(&mut args, "--e12-shards")
        .map(|v| v.split(',').map(|s| s.parse().expect("--e12-shards expects numbers")).collect());
    let incast_gate = args.iter().any(|a| a == "--incast-gate");
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    if incast_gate {
        // CI's tentpole gate, run in isolation: the k=8 PFC incast that
        // deadlocked before PR 7, now required to finish every flow
        // with zero drops under the pause watchdog (fires are fine —
        // they are the mechanism, and the table reports them).
        let mut params = e9_congestion::E9Params {
            k: 8,
            hosts_per_edge: 4,
            segments: 16,
            shards,
            ..Default::default()
        };
        params.watchdog = e9_watchdog_param(params.watchdog);
        let pattern = TrafficPattern::Hotspot { hot_receivers: params.hot_receivers };
        eprintln!(
            "[repro] incast gate: E9 k=8 hotspot, {} hosts, PFC + watchdog, {shards} shard(s)...",
            params.k * params.k / 2 * params.hosts_per_edge
        );
        let started = Instant::now();
        let rows = e9_ccs
            .iter()
            .map(|&cc| e9_congestion::run_cell(&params, e9_congestion::QueueMode::Pfc, cc, pattern))
            .collect();
        let results = [e9_congestion::E9Result { rows }];
        eprintln!("[repro] incast gate took {} ms", started.elapsed().as_millis());
        println!("{}", e9_congestion::table(&results).render_markdown());
        let ok = e9_congestion::verify_pfc_lossless_completion(&results);
        println!(
            "incast k=8 under PFC + watchdog, all flows complete with zero drops: {}",
            if ok { "HOLDS" } else { "VIOLATED" }
        );
        std::process::exit(if ok { 0 } else { 1 });
    }
    // Both flags only act on E8/E9/E11/E12; warn instead of silently
    // ignoring them when the selection excludes all four.
    if !want("e8") && !want("e9") && !want("e11") && !want("e12") {
        if shards > 1 {
            eprintln!(
                "[repro] warning: --shards only affects e8/e9/e11/e12, none of which is selected"
            );
        }
        if trace_out.is_some() {
            eprintln!(
                "[repro] warning: --trace-out only applies to e8/e9/e11/e12, \
                 none of which is selected"
            );
        }
    }

    if want("e1") {
        let started = Instant::now();
        eprintln!("[repro] running E1 (Fig. 2 latency, ARP-Path vs STP root sweep)...");
        let params = if quick {
            e1_latency::E1Params { probes: 20, ..Default::default() }
        } else {
            Default::default()
        };
        let result = e1_latency::run(&params);
        println!("{}", e1_latency::table(&result).render_markdown());
        println!(
            "headline (ARP-Path ≤ every STP placement, < worst): {}\n",
            if e1_latency::verify_headline(&result) { "HOLDS" } else { "VIOLATED" }
        );
        wall_ms.push(("e1_ms".into(), started.elapsed().as_secs_f64() * 1e3));
    }

    if want("e2") {
        let started = Instant::now();
        eprintln!("[repro] running E2 (Fig. 3 path repair during video stream)...");
        let params = if quick {
            e2_repair::E2Params {
                duration: SimDuration::secs(20),
                failures: [SimDuration::secs(5), SimDuration::secs(12)],
                stp_timer_divisor: 10,
                ..Default::default()
            }
        } else {
            Default::default()
        };
        let result = e2_repair::run(&params);
        println!("{}", e2_repair::table(&result).render_markdown());
        if params.stp_timer_divisor > 1 {
            println!("(STP timers scaled down by {}x in quick mode)\n", params.stp_timer_divisor);
        }
        wall_ms.push(("e2_ms".into(), started.elapsed().as_secs_f64() * 1e3));
    }

    if want("e3") {
        let started = Instant::now();
        eprintln!("[repro] running E3 (line-rate frame-size sweep)...");
        let params = if quick {
            e3_linerate::E3Params { frames_per_size: 500, ..Default::default() }
        } else {
            Default::default()
        };
        let result = e3_linerate::run(&params);
        println!("{}", e3_linerate::table(&result).render_markdown());
        println!(
            "line rate sustained at every size: {}\n",
            if e3_linerate::verify_linerate(&result) { "YES" } else { "NO" }
        );
        wall_ms.push(("e3_ms".into(), started.elapsed().as_secs_f64() * 1e3));
    }

    if want("e5") {
        let started = Instant::now();
        eprintln!("[repro] running E5 (load distribution on a grid fabric)...");
        let params = if quick {
            e5_load::E5Params { side: 3, probes: 20, stp_timer_divisor: 10 }
        } else {
            Default::default()
        };
        let result = e5_load::run(&params);
        println!("{}", e5_load::table(&result).render_markdown());
        wall_ms.push(("e5_ms".into(), started.elapsed().as_secs_f64() * 1e3));
    }

    if want("e6") {
        let started = Instant::now();
        eprintln!("[repro] running E6 (ARP proxy broadcast suppression)...");
        let params = if quick {
            e6_proxy::E6Params { side: 3, clients: 24, servers: 2 }
        } else {
            Default::default()
        };
        let result = e6_proxy::run(&params);
        println!("{}", e6_proxy::table(&result).render_markdown());
        println!(
            "suppression effective: {}\n",
            if e6_proxy::verify_suppression(&result) { "YES" } else { "NO" }
        );
        wall_ms.push(("e6_ms".into(), started.elapsed().as_secs_f64() * 1e3));
    }

    if want("e7") {
        let started = Instant::now();
        eprintln!("[repro] running E7 (lock timer / table capacity ablations)...");
        let params = if quick {
            e7_ablation::E7Params { probes: 20, ..Default::default() }
        } else {
            Default::default()
        };
        let result = e7_ablation::run(&params);
        println!("{}", e7_ablation::table(&result).render_markdown());
        wall_ms.push(("e7_ms".into(), started.elapsed().as_secs_f64() * 1e3));
    }

    if want("e8") {
        // Fabric sweep: hosts_per_edge grows with k so the biggest run
        // carries a four-digit host count (k=8: 32 racks × 32 hosts).
        let ks: &[(usize, usize)] = if quick { &[(4, 2)] } else { &[(4, 16), (6, 24), (8, 32)] };
        let e8_params = |&(k, hosts_per_edge): &(usize, usize)| e8_fattree::E8Params {
            k,
            hosts_per_edge,
            datagrams: if quick { 5 } else { 10 },
            hot_receivers: (k * k / 2 * hosts_per_edge / 32).max(2),
            shards,
            ..Default::default()
        };
        let mut results = Vec::new();
        let sweep_started = Instant::now();
        for kh in ks {
            let params = e8_params(kh);
            eprintln!(
                "[repro] running E8 (fat-tree load balance), k={}, {} hosts, {shards} shard(s)...",
                params.k,
                params.k * params.k / 2 * params.hosts_per_edge
            );
            let started = std::time::Instant::now();
            results.push(e8_fattree::run(&params));
            eprintln!(
                "[repro] e8 k={} took {} ms (both patterns, {shards} shard(s))",
                params.k,
                started.elapsed().as_millis()
            );
            wall_ms.push((format!("e8_k{}_ms", params.k), started.elapsed().as_secs_f64() * 1e3));
        }
        wall_ms.push(("e8_total_ms".into(), sweep_started.elapsed().as_secs_f64() * 1e3));
        println!("{}", e8_fattree::table(&results).render_markdown());
        for r in &results {
            println!("{}", e8_fattree::utilization_table(r).render_markdown());
            if let Some(shard_summary) = &r.shard_summary {
                println!("{}", shard_summary.render_markdown());
            }
        }
        println!(
            "permutation spreads over a majority of cores (jain > 0.5, lossless): {}\n",
            if results.iter().all(e8_fattree::verify_spread) { "HOLDS" } else { "VIOLATED" }
        );
        if let Some(path) = &trace_out {
            // The canonical artifact: the first fabric's permutation
            // delivery trace, re-run with tracing enabled. Identical
            // bytes regardless of --shards.
            eprintln!("[repro] capturing E8 delivery trace ({shards} shard(s)) -> {path}");
            let trace = e8_fattree::delivery_trace(&e8_params(&ks[0]), TrafficPattern::Permutation);
            let mut body = trace.join("\n");
            body.push('\n');
            std::fs::write(path, body).expect("write --trace-out file");
        }
    }

    if want("e9") {
        // Congestion sweep: modest host counts (closed-loop flows cost
        // far more events per host than E8's open-loop blasts).
        let ks: &[(usize, usize)] = if quick { &[(4, 2)] } else { &[(4, 4), (6, 4), (8, 4)] };
        let e9_params = |&(k, hosts_per_edge): &(usize, usize)| {
            let mut params = e9_congestion::E9Params {
                k,
                hosts_per_edge,
                segments: if quick { 16 } else { 32 },
                shards,
                ..Default::default()
            };
            params.watchdog = e9_watchdog_param(params.watchdog);
            params
        };
        let mut results = Vec::new();
        let sweep_started = Instant::now();
        for kh in ks {
            let params = e9_params(kh);
            eprintln!(
                "[repro] running E9 (congested fabrics), k={}, {} hosts, {shards} shard(s)...",
                params.k,
                params.k * params.k / 2 * params.hosts_per_edge
            );
            let started = std::time::Instant::now();
            results.push(e9_congestion::run_with(&params, &e9_ccs));
            eprintln!(
                "[repro] e9 k={} took {} ms (3 modes x 2 patterns x {} cc, {shards} shard(s))",
                params.k,
                started.elapsed().as_millis(),
                e9_ccs.len()
            );
            wall_ms.push((format!("e9_k{}_ms", params.k), started.elapsed().as_secs_f64() * 1e3));
        }
        wall_ms.push(("e9_total_ms".into(), sweep_started.elapsed().as_secs_f64() * 1e3));
        println!("{}", e9_congestion::table(&results).render_markdown());
        println!("{}", e9_congestion::fct_comparison_table(&results).render_markdown());
        for r in &results {
            println!("{}", e9_congestion::depth_table(r).render_markdown());
        }
        println!(
            "drop-tail drops, PFC pauses losslessly, infinite does neither: {}",
            if e9_congestion::verify_congestion(&results) { "HOLDS" } else { "VIOLATED" }
        );
        println!(
            "pfc completes every flow with zero drops (watchdog armed): {}",
            if e9_congestion::verify_pfc_lossless_completion(&results) {
                "HOLDS"
            } else {
                "VIOLATED"
            }
        );
        if e9_ccs.len() == e9_congestion::CcMode::ALL.len() {
            println!(
                "aimd beats the fixed window's p99 in at least one congested regime: {}\n",
                if e9_congestion::verify_aimd_beats_fixed_somewhere(&results) {
                    "HOLDS"
                } else {
                    "VIOLATED"
                }
            );
        } else {
            println!();
        }
        if let Some(path) = &trace_out {
            // The canonical E9 artifact: the first fabric's PFC hotspot
            // delivery trace — the run where pause/resume frames cross
            // shard cuts. Identical bytes regardless of --shards. When
            // E8 also ran (and owns `path`), this goes to `path.e9`.
            let e9_path = if want("e8") { format!("{path}.e9") } else { path.clone() };
            eprintln!("[repro] capturing E9 delivery trace ({shards} shard(s)) -> {e9_path}");
            let trace = e9_congestion::delivery_trace(
                &e9_params(&ks[0]),
                e9_congestion::QueueMode::Pfc,
                TrafficPattern::Hotspot { hot_receivers: e9_params(&ks[0]).hot_receivers },
            );
            let mut body = trace.join("\n");
            body.push('\n');
            std::fs::write(&e9_path, body).expect("write --trace-out file");
        }
    }

    if want("e11") {
        // Churn sweep: one run per fabric size covers all three table
        // regimes (undersized / headroom / oversized) under one seeded
        // churn script.
        let ks: &[usize] = if quick { &[4] } else { &[4, 6, 8] };
        let e11_params = |&k: &usize| {
            let mut params = e11_churn::E11Params::for_k(k);
            if quick {
                params.horizon = SimDuration::millis(100);
            }
            params.shards = shards;
            params
        };
        let mut results = Vec::new();
        let sweep_started = Instant::now();
        for k in ks {
            let params = e11_params(k);
            eprintln!(
                "[repro] running E11 (station churn), k={}, {} stations, {shards} shard(s)...",
                params.k, params.stations
            );
            let started = std::time::Instant::now();
            results.push(e11_churn::run(&params));
            eprintln!(
                "[repro] e11 k={} took {} ms (3 regimes, {shards} shard(s))",
                params.k,
                started.elapsed().as_millis()
            );
            wall_ms.push((format!("e11_k{}_ms", params.k), started.elapsed().as_secs_f64() * 1e3));
        }
        wall_ms.push(("e11_total_ms".into(), sweep_started.elapsed().as_secs_f64() * 1e3));
        println!("{}", e11_churn::table(&results).render_markdown());
        // The dip-and-recovery detail for the stormiest cell: the first
        // fabric's undersized regime.
        if let Some(first) = results.first().and_then(|r| r.rows.first()) {
            println!("{}", e11_churn::epoch_table(first).render_markdown());
        }
        println!(
            "undersized tables evict, autosized headroom stays eviction-free under churn: {}",
            if e11_churn::verify_pressure(&results) { "HOLDS" } else { "VIOLATED" }
        );
        println!(
            "movers re-activate behind their new rack and the fabric corrects the stale path: {}\n",
            if e11_churn::verify_correction(&results) { "HOLDS" } else { "VIOLATED" }
        );
        if let Some(path) = &trace_out {
            // The canonical E11 artifact: the first fabric's undersized
            // churn trace — carrier flaps, eviction churn, repair
            // floods and all. Identical bytes regardless of --shards.
            // When E8/E9 also ran (and own `path`), this goes to
            // `path.e11`.
            let e11_path =
                if want("e8") || want("e9") { format!("{path}.e11") } else { path.clone() };
            eprintln!("[repro] capturing E11 delivery trace ({shards} shard(s)) -> {e11_path}");
            let trace =
                e11_churn::delivery_trace(&e11_params(&ks[0]), e11_churn::TableRegime::Undersized);
            let mut body = trace.join("\n");
            body.push('\n');
            std::fs::write(&e11_path, body).expect("write --trace-out file");
        }
    }

    if want("e12") {
        // Shard-scaling sweep on the k=16 fabric. Unlike e8/e9/e11,
        // `--shards` does not pick the engine here (the sweep covers
        // 1/2/4/8 itself); it selects the worker count for the
        // `--trace-out` capture.
        let params = if quick { e12_scale::E12Params::quick() } else { Default::default() };
        let mut params = e12_scale::E12Params { use_matrix: e12_matrix, ..params };
        if let Some(k) = e12_k {
            assert!(k >= 4 && k % 2 == 0, "--e12-k must be an even arity >= 4");
            params.k = k;
        }
        if let Some(counts) = e12_shard_counts.clone() {
            assert!(!counts.is_empty(), "--e12-shards must name at least one count");
            params.shard_counts = counts;
        }
        eprintln!(
            "[repro] running E12 (shard scaling), k={}, {} hosts/edge, sweep {:?}, {} lookahead...",
            params.k,
            params.hosts_per_edge,
            params.shard_counts,
            if params.use_matrix { "matrix" } else { "global" }
        );
        let started = Instant::now();
        let result = e12_scale::run(&params);
        eprintln!("[repro] e12 sweep took {} ms", started.elapsed().as_millis());
        wall_ms.push(("e12_sweep_ms".into(), started.elapsed().as_secs_f64() * 1e3));
        println!("{}", e12_scale::table(&result).render_markdown());
        println!("{}", e12_scale::footprint_table(&result).render_markdown());
        println!(
            "every worker count delivers every datagram: {}",
            if e12_scale::verify_delivery(&result) { "HOLDS" } else { "VIOLATED" }
        );
        println!(
            "SoA planes under the AoS footprint: {}",
            if e12_scale::verify_footprint(&result) { "HOLDS" } else { "VIOLATED" }
        );
        eprintln!("[repro] e12: comparing merged traces across {:?}...", params.shard_counts);
        println!(
            "merged delivery trace byte-identical at every worker count: {}\n",
            if e12_scale::verify_trace_identity(&params) { "HOLDS" } else { "VIOLATED" }
        );
        if let Some(path) = &trace_out {
            // The canonical E12 artifact: the sweep scenario's trace at
            // the `--shards` worker count. Identical bytes regardless
            // of --shards; CI diffs shards=1 against shards=4. When
            // E8/E9/E11 also ran (and own `path`), goes to `path.e12`.
            let e12_path = if want("e8") || want("e9") || want("e11") {
                format!("{path}.e12")
            } else {
                path.clone()
            };
            eprintln!("[repro] capturing E12 delivery trace ({shards} shard(s)) -> {e12_path}");
            let trace = e12_scale::delivery_trace(&params, shards);
            let mut body = trace.join("\n");
            body.push('\n');
            std::fs::write(&e12_path, body).expect("write --trace-out file");
        }
    }

    if let Some(path) = &bench_json {
        // The guard key: a quick-geometry E8 run, measured in-process.
        // Under --quick the sweep above already ran it; re-run either
        // way so the key always means the same workload.
        eprintln!("[repro] bench-json: timing the quick E8 guard workload...");
        let quick_params = e8_fattree::E8Params {
            k: 4,
            hosts_per_edge: 2,
            datagrams: 5,
            hot_receivers: 2,
            shards: 1,
            ..Default::default()
        };
        // Best of three: a single ~1.5 ms sample is at the mercy of
        // scheduler noise; the minimum is the stable signal the CI
        // guard should compare.
        let mut best_ms = f64::INFINITY;
        for _ in 0..3 {
            let started = Instant::now();
            let quick_result = e8_fattree::run(&quick_params);
            best_ms = best_ms.min(started.elapsed().as_secs_f64() * 1e3);
            assert!(e8_fattree::verify_spread(&quick_result), "quick E8 headline must hold");
        }
        wall_ms.push(("e8_quick_ms".into(), best_ms));
        // Second guard key since PR 7: a quick-geometry E9 PFC incast
        // (k=4 hotspot, watchdog armed, both controllers) — the cell
        // family the deadlock fix lives in. Its FCT p99s are recorded
        // alongside so the trajectory shows the AIMD/fixed gap, not
        // just wall clock.
        eprintln!("[repro] bench-json: timing the quick E9 incast guard workload...");
        let incast_params = e9_congestion::E9Params {
            k: 4,
            hosts_per_edge: 2,
            segments: 16,
            shards: 1,
            ..Default::default()
        };
        let incast_pattern = TrafficPattern::Hotspot { hot_receivers: incast_params.hot_receivers };
        let mut best_ms = f64::INFINITY;
        let mut fct_p99 = Vec::new();
        for _ in 0..3 {
            let started = Instant::now();
            let rows: Vec<_> = e9_congestion::CcMode::ALL
                .iter()
                .map(|&cc| {
                    e9_congestion::run_cell(
                        &incast_params,
                        e9_congestion::QueueMode::Pfc,
                        cc,
                        incast_pattern,
                    )
                })
                .collect();
            best_ms = best_ms.min(started.elapsed().as_secs_f64() * 1e3);
            let results = [e9_congestion::E9Result { rows }];
            assert!(
                e9_congestion::verify_pfc_lossless_completion(&results),
                "quick E9 incast must complete losslessly under PFC"
            );
            fct_p99 = results[0]
                .rows
                .iter()
                .map(|r| {
                    (format!("e9_incast_pfc_{}_p99_ms", r.cc), r.fct.percentile(99.0) as f64 / 1e6)
                })
                .collect();
        }
        wall_ms.push(("e9_incast_quick_ms".into(), best_ms));
        wall_ms.extend(fct_p99);
        // Third guard key since PR 9: a quick-geometry E11 churn run
        // (k=4, halved churn window, all three table regimes) — the
        // eviction/correction machinery this PR made observable. Its
        // undersized eviction count and correction p99 are recorded
        // alongside so the trajectory shows the pressure shape, not
        // just wall clock.
        eprintln!("[repro] bench-json: timing the quick E11 churn guard workload...");
        let churn_params = e11_churn::E11Params {
            horizon: SimDuration::millis(50),
            ..e11_churn::E11Params::for_k(4)
        };
        let mut best_ms = f64::INFINITY;
        let mut churn_keys = Vec::new();
        for _ in 0..3 {
            let started = Instant::now();
            let result = e11_churn::run(&churn_params);
            best_ms = best_ms.min(started.elapsed().as_secs_f64() * 1e3);
            let results = [result];
            assert!(
                e11_churn::verify_pressure(&results),
                "quick E11 pressure gates must hold (undersized evicts, headroom does not)"
            );
            let under = &results[0].rows[0];
            churn_keys = vec![
                ("e11_churn_evictions".to_string(), under.table.evictions as f64),
                (
                    "e11_churn_corr_p99_ms".to_string(),
                    if under.corrections.is_empty() {
                        0.0
                    } else {
                        under.corrections.percentile(99.0) as f64 / 1e6
                    },
                ),
            ];
        }
        wall_ms.push(("e11_churn_quick_ms".into(), best_ms));
        wall_ms.extend(churn_keys);
        // Fourth guard pair since PR 10: the quick E12 shard-scaling
        // sweep (k=16 skeleton, all four worker counts, matrix
        // lookahead) and the SoA bytes-per-station figure it measures
        // — the two numbers the shard-scaling push is accountable for.
        eprintln!("[repro] bench-json: timing the quick E12 scale guard workload...");
        let scale_params = e12_scale::E12Params::quick();
        let mut best_ms = f64::INFINITY;
        let mut scale_keys = Vec::new();
        for _ in 0..3 {
            let started = Instant::now();
            let result = e12_scale::run(&scale_params);
            best_ms = best_ms.min(started.elapsed().as_secs_f64() * 1e3);
            assert!(
                e12_scale::verify_delivery(&result),
                "quick E12 must deliver everything at every worker count"
            );
            assert!(
                e12_scale::verify_footprint(&result),
                "quick E12 SoA footprint must undercut the AoS layout"
            );
            scale_keys = vec![("dleft_bytes_per_station".to_string(), result.bytes_per_station())];
        }
        wall_ms.push(("e12_scale_quick_ms".into(), best_ms));
        wall_ms.extend(scale_keys);
        eprintln!("[repro] bench-json: running fast-table micro measurements...");
        let micro_ns: Vec<(String, f64)> =
            micro::measure_all().into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        let json = format!(
            "{{\n  \"schema\": \"arppath-bench-trajectory/v1\",\n  \"pr\": \"PR10\",\n  \
             \"quick\": {},\n  \"wall_ms\": {{\n{}\n  }},\n  \"micro_ns\": {{\n{}\n  }}\n}}\n",
            quick,
            json_section(&wall_ms),
            json_section(&micro_ns),
        );
        std::fs::write(path, json).expect("write --bench-json file");
        eprintln!("[repro] bench-json written to {path}");
    }
    eprintln!("[repro] done.");
}
