//! Concrete scenarios for the differential shard-equivalence fuzzer.
//!
//! [`arppath_netsim::difftest`] supplies the engine-agnostic harness
//! (check, multiset trace compare, delta-debugging minimizer); this
//! module supplies the scenario space — randomized E9-style congested
//! fat-tree runs spanning every axis the sharded engine must get
//! right:
//!
//! * fat-tree arity `k` ∈ {4, 6, 8} and hosts per edge switch,
//! * the jitter/workload seed (which decides where same-nanosecond
//!   flood collisions land),
//! * traffic pattern (permutation / hotspot incast),
//! * queue policy (infinite / drop-tail / PFC) and the pause watchdog,
//! * shard count (2–4), partition strategy (rack-major / round-robin)
//!   and the window computation (per-pair lookahead matrix vs the
//!   global-`L` compatibility oracle),
//! * station churn (E11-style arrivals, departures and rack moves on
//!   undersized tables — link-admin events, eviction storms and
//!   mass-expiry sweeps all cross the engines' event order).
//!
//! A [`Spec`] serializes to one `key=value` line and parses back, so a
//! divergence found by `repro -- difftest` lands in a bug report as a
//! string that `tests/sharded_equivalence.rs` replays verbatim — that
//! is exactly how the k=6 reproducer pinned there was produced.

use crate::experiments::e11_churn::{self, E11Params, TableRegime};
use crate::experiments::e9_congestion::{self, CcMode, E9Params, QueueMode};
use arppath_host::TrafficPattern;
use arppath_netsim::{difftest::DiffScenario, DeliveryTracer, PauseWatchdog, SimDuration};
use arppath_topo::Partition;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::{Arc, Mutex};

/// How the fabric is split across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionKind {
    /// Pods atomic, racks local — the production partition.
    RackMajor,
    /// Node `i` → shard `i mod N` — maximum cut, the stress partition.
    RoundRobin,
}

impl PartitionKind {
    fn label(self) -> &'static str {
        match self {
            PartitionKind::RackMajor => "rack",
            PartitionKind::RoundRobin => "round-robin",
        }
    }
}

/// One fuzzable scenario, serializable to a single `key=value` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Spec {
    /// Fat-tree arity (even).
    pub k: usize,
    /// Hosts attached per edge switch.
    pub hosts_per_edge: usize,
    /// Segments per closed-loop flow.
    pub segments: u64,
    /// Jitter + workload seed.
    pub seed: u64,
    /// `true` = hotspot incast, `false` = permutation.
    pub hotspot: bool,
    /// Queueing regime.
    pub mode: QueueMode,
    /// Pause watchdog armed (only meaningful under PFC).
    pub watchdog: bool,
    /// Worker shards for the candidate run (≥ 2; the reference is
    /// always the single-threaded engine).
    pub shards: usize,
    /// Partition strategy for the candidate run. Ignored when
    /// `churn > 0`: churn scenarios carry host link-admin events,
    /// which are only legal intra-shard, so they always run
    /// rack-major (the production partition).
    pub partition: PartitionKind,
    /// Per-slot departure probability (‰) of an E11 churn scenario;
    /// `0` selects the E9 congested-flow scenario family instead.
    pub churn: u32,
    /// Fraction of departures that are rack moves (‰); only
    /// meaningful when `churn > 0`.
    pub mobility: u32,
    /// `true` = per-pair lookahead matrix, `false` = the global-`L`
    /// compatibility window — both window computations must agree with
    /// the single-threaded reference.
    pub matrix: bool,
}

impl Spec {
    /// Draw one scenario from the fuzzer's seed stream. Geometry stays
    /// quick (k ≤ 8, ≤ 2 hosts per edge, short flows) so a 100-seed
    /// sweep finishes in CI time; the axes that historically hid bugs
    /// — the jitter seed and the partition — get the full range.
    pub fn generate(seed: u64) -> Spec {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let k = [4, 6, 8][rng.gen_range(0..3usize)];
        let shards = rng.gen_range(2..=4usize);
        let mut spec = Spec {
            k,
            hosts_per_edge: rng.gen_range(1..=2usize),
            segments: [4, 8, 16][rng.gen_range(0..3usize)],
            seed: rng.gen_range(0..1u64 << 32),
            hotspot: rng.gen_range(0..4u32) == 0,
            mode: QueueMode::ALL[rng.gen_range(0..3usize)],
            watchdog: rng.gen_range(0..2u32) == 0,
            shards,
            partition: if rng.gen_range(0..2u32) == 0 {
                PartitionKind::RackMajor
            } else {
                PartitionKind::RoundRobin
            },
            churn: 0,
            mobility: 0,
            matrix: rng.gen_range(0..2u32) == 0,
        };
        // One in four scenarios exercises the churn family instead:
        // link flaps, evictions and timer-wheel sweeps replace queue
        // pressure as the thing the engines must order identically.
        if rng.gen_range(0..4u32) == 0 {
            spec.churn = [10, 25, 50][rng.gen_range(0..3usize)];
            spec.mobility = [0, 300, 500][rng.gen_range(0..3usize)];
            spec.partition = PartitionKind::RackMajor;
        }
        spec
    }

    /// Serialize to the one-line reproducer format of [`Spec::parse`].
    pub fn render(&self) -> String {
        format!(
            "k={} hosts_per_edge={} segments={} seed={} pattern={} mode={} \
             watchdog={} shards={} partition={} churn={} mobility={} lookahead={}",
            self.k,
            self.hosts_per_edge,
            self.segments,
            self.seed,
            if self.hotspot { "hotspot" } else { "permutation" },
            self.mode.label(),
            if self.watchdog { "on" } else { "off" },
            self.shards,
            self.partition.label(),
            self.churn,
            self.mobility,
            if self.matrix { "matrix" } else { "global" },
        )
    }

    /// Parse the `key=value` line [`Spec::render`] emits.
    ///
    /// # Panics
    /// On any malformed or unknown field — a reproducer that does not
    /// round-trip is worse than none.
    pub fn parse(line: &str) -> Spec {
        let mut spec = Spec {
            k: 4,
            hosts_per_edge: 1,
            segments: 4,
            seed: 0,
            hotspot: false,
            mode: QueueMode::Infinite,
            watchdog: false,
            shards: 2,
            partition: PartitionKind::RackMajor,
            churn: 0,
            mobility: 0,
            // Reproducer lines from before the matrix knob existed
            // replay in the production (matrix) mode.
            matrix: true,
        };
        for field in line.split_whitespace() {
            let (key, value) =
                field.split_once('=').unwrap_or_else(|| panic!("malformed field {field:?}"));
            match key {
                "k" => spec.k = value.parse().expect("k"),
                "hosts_per_edge" => spec.hosts_per_edge = value.parse().expect("hosts_per_edge"),
                "segments" => spec.segments = value.parse().expect("segments"),
                "seed" => spec.seed = value.parse().expect("seed"),
                "pattern" => spec.hotspot = value == "hotspot",
                "mode" => {
                    spec.mode = QueueMode::ALL
                        .into_iter()
                        .find(|m| m.label() == value)
                        .unwrap_or_else(|| panic!("unknown mode {value:?}"))
                }
                "watchdog" => spec.watchdog = value == "on",
                "shards" => spec.shards = value.parse().expect("shards"),
                "partition" => {
                    spec.partition = match value {
                        "rack" => PartitionKind::RackMajor,
                        "round-robin" => PartitionKind::RoundRobin,
                        other => panic!("unknown partition {other:?}"),
                    }
                }
                "churn" => spec.churn = value.parse().expect("churn"),
                "mobility" => spec.mobility = value.parse().expect("mobility"),
                "lookahead" => {
                    spec.matrix = match value {
                        "matrix" => true,
                        "global" => false,
                        other => panic!("unknown lookahead {other:?}"),
                    }
                }
                other => panic!("unknown field {other:?}"),
            }
        }
        spec
    }

    /// The E9 parameter block this spec maps onto.
    fn e9(&self, shards: usize) -> E9Params {
        E9Params {
            k: self.k,
            hosts_per_edge: self.hosts_per_edge,
            segments: self.segments,
            seed: self.seed,
            shards,
            watchdog: if self.watchdog { E9Params::default().watchdog } else { PauseWatchdog::Off },
            ..E9Params::default()
        }
    }

    fn pattern(&self) -> TrafficPattern {
        if self.hotspot {
            TrafficPattern::Hotspot { hot_receivers: 2 }
        } else {
            TrafficPattern::Permutation
        }
    }

    /// The E11 parameter block this spec maps onto when `churn > 0`.
    /// A short horizon keeps a fuzz sweep in CI time; the undersized
    /// table regime is implied — it is the one where churn reaches the
    /// eviction and sweep machinery, the event kinds this family
    /// exists to cross-check.
    fn e11(&self, shards: usize) -> E11Params {
        E11Params {
            k: self.k,
            horizon: SimDuration::millis(60),
            departure_per_mille: self.churn,
            mobility_per_mille: self.mobility,
            seed: self.seed,
            shards,
            use_matrix: self.matrix,
            ..E11Params::for_k(self.k)
        }
    }

    /// Run one engine and render its merged, timestamp-sorted delivery
    /// trace. `shards = 1` is the single-threaded reference; `≥ 2`
    /// builds the sharded engine under this spec's partition strategy.
    fn trace(&self, shards: usize) -> Vec<String> {
        if self.churn > 0 {
            // The churn family carries host link-admin events, legal
            // only intra-shard: `delivery_trace` partitions rack-major
            // internally, so `self.partition` does not apply here.
            return e11_churn::delivery_trace(&self.e11(shards), TableRegime::Undersized);
        }
        let params = self.e9(shards);
        let (t, ft, _pairs, deadline) =
            e9_congestion::scenario(&params, self.mode, CcMode::Fixed, self.pattern());
        if shards > 1 {
            let hosts = ft.host_capacity(self.hosts_per_edge);
            let bridges = ft.core.len() + ft.aggregation.len() + ft.edge.len();
            let partition = match self.partition {
                PartitionKind::RackMajor => {
                    Partition::rack_major(&ft, self.hosts_per_edge, hosts, shards)
                }
                PartitionKind::RoundRobin => Partition::round_robin(bridges, hosts, shards),
            };
            let mut topo = t.build_sharded_with(&partition, true, self.matrix);
            topo.net.run_until(deadline);
            topo.net.delivery_trace()
        } else {
            let sink = Arc::new(Mutex::new(DeliveryTracer::new()));
            let mut t = t;
            t.set_tracer(Box::new(sink.clone()));
            let mut built = t.build();
            built.net.run_until(deadline);
            let records = std::mem::take(&mut sink.lock().unwrap().records);
            DeliveryTracer::render_sorted(records)
        }
    }
}

impl DiffScenario for Spec {
    fn run_reference(&self) -> Vec<String> {
        self.trace(1)
    }

    fn run_candidate(&self) -> Vec<String> {
        self.trace(self.shards)
    }

    /// The shrink lattice, most aggressive first: cut the workload
    /// (segments, hosts), then the fabric (k), then simplify the
    /// configuration one axis at a time toward the quiet defaults
    /// (permutation, infinite queues, watchdog off, 2 shards,
    /// rack-major, matrix windows). The seed is never shrunk — it is
    /// what makes the scenario reproduce.
    fn shrink(&self) -> Vec<Spec> {
        let mut out = Vec::new();
        if self.segments > 1 {
            out.push(Spec { segments: self.segments / 2, ..*self });
        }
        if self.hosts_per_edge > 1 {
            out.push(Spec { hosts_per_edge: self.hosts_per_edge - 1, ..*self });
        }
        if self.k > 4 {
            out.push(Spec { k: self.k - 2, ..*self });
        }
        if self.hotspot {
            out.push(Spec { hotspot: false, ..*self });
        }
        if self.watchdog {
            out.push(Spec { watchdog: false, ..*self });
        }
        if self.mode != QueueMode::Infinite {
            out.push(Spec { mode: QueueMode::Infinite, ..*self });
        }
        if self.churn > 0 && self.mobility > 0 {
            out.push(Spec { mobility: 0, ..*self });
        }
        if self.churn > 0 {
            // Dropping churn entirely falls back to the quiet E9
            // family: if the divergence survives, churn was incidental.
            out.push(Spec { churn: 0, mobility: 0, ..*self });
        }
        if self.shards > 2 {
            out.push(Spec { shards: self.shards - 1, ..*self });
        }
        if self.partition != PartitionKind::RackMajor {
            out.push(Spec { partition: PartitionKind::RackMajor, ..*self });
        }
        if !self.matrix {
            // Toward the production window computation: if the
            // divergence survives the switch, the global-`L`
            // compatibility path was incidental.
            out.push(Spec { matrix: true, ..*self });
        }
        out
    }

    fn describe(&self) -> String {
        self.render()
    }
}

/// Run `seeds` generated scenarios; on the first failure, minimize and
/// return the report. `log` receives one progress line per scenario.
pub fn fuzz(
    first_seed: u64,
    seeds: u64,
    minimize_budget: usize,
    log: &mut dyn FnMut(&str),
) -> Option<arppath_netsim::Minimized<Spec>> {
    for seed in first_seed..first_seed + seeds {
        let spec = Spec::generate(seed);
        let outcome = arppath_netsim::difftest::check(&spec);
        match &outcome {
            arppath_netsim::Outcome::Identical => {
                log(&format!("seed {seed}: ok ({})", spec.render()));
            }
            arppath_netsim::Outcome::Diverged(d) => {
                log(&format!("seed {seed}: DIVERGED ({d}) — minimizing..."));
                return arppath_netsim::difftest::minimize(spec, outcome, minimize_budget);
            }
            arppath_netsim::Outcome::Crashed { engine, message } => {
                log(&format!("seed {seed}: CRASHED in {engine} ({message}) — minimizing..."));
                return arppath_netsim::difftest::minimize(spec, outcome, minimize_budget);
            }
        }
    }
    None
}

/// The injected-bug self-check: widen every shard's horizon beyond the
/// sound CMB bound (`set_unsound_horizon_widen`), prove the fuzzer
/// catches it within `seeds` scenarios and minimizes the failure, then
/// restore soundness and prove the minimized spec passes again.
/// Returns an error description on any step that does not behave.
pub fn self_check(seeds: u64, log: &mut dyn FnMut(&str)) -> Result<(), String> {
    // 30 µs dwarfs every fabric propagation delay (1–10 µs), so some
    // cross-shard frame lands in a neighbour's already-executed past.
    arppath_netsim::sharded::set_unsound_horizon_widen(30_000);
    let found = fuzz(0, seeds, 400, log);
    arppath_netsim::sharded::set_unsound_horizon_widen(0);
    let report = match found {
        Some(r) => r,
        None => {
            return Err(format!("harness MISSED the injected unsound horizon across {seeds} seeds"))
        }
    };
    log(&format!(
        "self-check: injected bug detected and minimized in {} attempts: {}",
        report.attempts,
        report.scenario.render()
    ));
    // The minimized spec must implicate the injected bug, not a real
    // one: with the horizon sound again it has to pass.
    arppath_netsim::sharded::set_unsound_horizon_widen(0);
    match arppath_netsim::difftest::check(&report.scenario) {
        arppath_netsim::Outcome::Identical => Ok(()),
        other => Err(format!(
            "minimized spec still fails with a sound horizon ({other:?}) — \
             a real divergence: {}",
            report.scenario.render()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_its_line_format() {
        for seed in 0..64 {
            let spec = Spec::generate(seed);
            assert_eq!(Spec::parse(&spec.render()), spec, "seed {seed}");
        }
    }

    #[test]
    fn generation_is_deterministic_and_covers_the_axes() {
        let a: Vec<Spec> = (0..64).map(Spec::generate).collect();
        let b: Vec<Spec> = (0..64).map(Spec::generate).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|s| s.k == 6) && a.iter().any(|s| s.k == 8));
        assert!(a.iter().any(|s| s.partition == PartitionKind::RoundRobin));
        assert!(a.iter().any(|s| s.mode == QueueMode::Pfc));
        assert!(a.iter().any(|s| s.shards == 3) && a.iter().any(|s| s.shards == 4));
        assert!(
            a.iter().any(|s| s.matrix) && a.iter().any(|s| !s.matrix),
            "both window computations must be drawn"
        );
        assert!(a.iter().any(|s| s.churn > 0), "the churn family must be drawn");
        assert!(
            a.iter().filter(|s| s.churn > 0).all(|s| s.partition == PartitionKind::RackMajor),
            "churn scenarios must stay rack-major (host link admin is intra-shard only)"
        );
    }

    #[test]
    fn shrink_strictly_reduces_or_simplifies() {
        let spec = Spec::parse(
            "k=8 hosts_per_edge=2 segments=16 seed=7 pattern=hotspot mode=pfc \
             watchdog=on shards=3 partition=round-robin churn=25 mobility=500 \
             lookahead=global",
        );
        let shrunk = spec.shrink();
        assert_eq!(shrunk.len(), 11, "every axis has somewhere to go");
        for s in &shrunk {
            assert_ne!(*s, spec);
        }
        // A fully minimal spec has nowhere left to shrink.
        let minimal = Spec::parse(
            "k=4 hosts_per_edge=1 segments=1 seed=7 pattern=permutation mode=infinite \
             watchdog=off shards=2 partition=rack",
        );
        assert!(minimal.shrink().is_empty());
    }
}
