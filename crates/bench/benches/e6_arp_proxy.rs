//! Criterion wrapper for experiment E6 (ARP proxy suppression).

use arppath_bench::experiments::e6_proxy::{run, E6Params};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_e6(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_arp_proxy");
    g.sample_size(10);
    g.bench_function("grid3x3_12clients_on_and_off", |b| {
        b.iter(|| run(&E6Params { side: 3, clients: 12, servers: 2 }))
    });
    g.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
