//! Criterion wrapper for experiment E5 (load distribution): times the
//! grid all-pairs workload under both protocols.

use arppath_bench::experiments::e5_load::{run, E5Params};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_e5(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_load_balance");
    g.sample_size(10);
    g.bench_function("grid3x3_10probes_both_protocols", |b| {
        b.iter(|| run(&E5Params { side: 3, probes: 10, stp_timer_divisor: 20 }))
    });
    g.finish();
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);
