//! Criterion wrapper for experiment E3 (line-rate sweep): times the
//! minimum-size-frame point — the most event-dense simulation in the
//! repository (one event pair every 672 simulated nanoseconds).

use arppath_bench::experiments::e3_linerate::{run, E3Params};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_e3(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_linerate");
    g.sample_size(10);
    g.bench_function("sweep_7sizes_200frames", |b| {
        b.iter(|| run(&E3Params { frames_per_size: 200, ..Default::default() }))
    });
    g.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
