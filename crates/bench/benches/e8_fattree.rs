//! Criterion wrapper for experiment E8 (fat-tree load balance): times
//! a scaled-down permutation + hotspot workload on a k=4 fabric — the
//! end-to-end cost of a many-host scenario, and the number the future
//! sharded-simulation PR must beat.

use arppath_bench::experiments::e8_fattree::{run, E8Params};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_e8(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_fattree");
    g.sample_size(10);
    g.bench_function("k4_16hosts_5dgrams_both_patterns", |b| {
        b.iter(|| run(&E8Params { k: 4, hosts_per_edge: 2, datagrams: 5, ..Default::default() }))
    });
    g.finish();
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);
