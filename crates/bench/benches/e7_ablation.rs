//! Criterion wrapper for experiment E7 (lock timer / table capacity
//! ablations).

use arppath_bench::experiments::e7_ablation::{run, E7Params};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_e7(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_ablation");
    g.sample_size(10);
    g.bench_function("both_sweeps_10probes", |b| {
        b.iter(|| run(&E7Params { probes: 10, ..Default::default() }))
    });
    g.finish();
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
