//! Micro-benchmarks of the wire codecs: the per-frame work every
//! simulated NIC and bridge does. Parsing dominates simulation cost at
//! scale, so it is worth tracking.

use arppath_wire::{ArpPacket, EthernetFrame, IpProto, Ipv4Packet, MacAddr, Payload};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn arp_frame_bytes() -> Vec<u8> {
    let src = MacAddr::from_index(1, 1);
    let arp = ArpPacket::request(src, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
    EthernetFrame::arp_request(src, arp).to_bytes()
}

fn udp_frame_bytes(payload: usize) -> Vec<u8> {
    let pkt = Ipv4Packet::new(
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        IpProto::Udp,
        Bytes::from(vec![0xAB; payload]),
    );
    EthernetFrame::new(MacAddr::from_index(1, 2), MacAddr::from_index(1, 1), Payload::Ipv4(pkt))
        .to_bytes()
}

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire/parse");
    // The hot path: decode from an owned `Bytes` buffer, slicing it for
    // payloads instead of copying (`parse_bytes`). The `_copy` variants
    // keep the old slice-input path measured so the zero-copy win stays
    // visible in every run.
    let arp = Bytes::from(arp_frame_bytes());
    g.throughput(Throughput::Bytes(arp.len() as u64));
    g.bench_function("arp_request_60B", |b| {
        b.iter(|| EthernetFrame::parse_bytes(black_box(&arp)).unwrap())
    });
    g.bench_function("arp_request_60B_copy", |b| {
        b.iter(|| EthernetFrame::parse(black_box(&arp[..])).unwrap())
    });
    let udp = Bytes::from(udp_frame_bytes(1000));
    g.throughput(Throughput::Bytes(udp.len() as u64));
    g.bench_function("udp_1034B", |b| {
        b.iter(|| EthernetFrame::parse_bytes(black_box(&udp)).unwrap())
    });
    g.bench_function("udp_1034B_copy", |b| {
        b.iter(|| EthernetFrame::parse(black_box(&udp[..])).unwrap())
    });
    g.finish();
}

fn bench_emit(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire/emit");
    let arp = EthernetFrame::parse(&arp_frame_bytes()).unwrap();
    g.bench_function("arp_request_60B", |b| b.iter(|| black_box(&arp).to_bytes()));
    let udp = EthernetFrame::parse(&udp_frame_bytes(1000)).unwrap();
    g.bench_function("udp_1034B", |b| b.iter(|| black_box(&udp).to_bytes()));
    g.finish();
}

criterion_group!(benches, bench_parse, bench_emit);
criterion_main!(benches);
