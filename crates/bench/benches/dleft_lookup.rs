//! Fast-table comparison: the d-left hash table against the BTreeMap
//! `AgingMap` oracle at the ≥10k-entry scale the All-Path scalability
//! study flags, plus the calendar queue against the binary heap it
//! replaced.
//!
//! The PR-5 acceptance bar lives here: `tables/dleft_get_hit_10k` must
//! be ≥2× faster than `tables/btree_get_hit_10k`. The idle-sweep pair
//! shows the timer wheel's O(expired) background aging against the
//! oracle's O(table) scan.

use arppath_bench::micro;
use arppath_netsim::SimTime;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_tables(c: &mut Criterion) {
    let n = micro::TABLE_ENTRIES;
    let hits = micro::key_schedule(n, false);
    let misses = micro::key_schedule(n, true);
    let mut dleft = micro::dleft_fixture(n);
    let mut btree = micro::btree_fixture(n);
    let now = SimTime(1);

    let mut g = c.benchmark_group("tables");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("dleft_get_hit_10k", |b| {
        b.iter(|| {
            let sum: u64 =
                hits.iter().filter_map(|k| dleft.get(k, now).copied()).map(u64::from).sum();
            black_box(sum)
        })
    });
    g.bench_function("btree_get_hit_10k", |b| {
        b.iter(|| {
            let sum: u64 =
                hits.iter().filter_map(|k| btree.get(k, now).copied()).map(u64::from).sum();
            black_box(sum)
        })
    });
    g.bench_function("dleft_get_miss_10k", |b| {
        b.iter(|| black_box(misses.iter().filter(|k| dleft.get(k, now).is_some()).count()))
    });
    g.bench_function("btree_get_miss_10k", |b| {
        b.iter(|| black_box(misses.iter().filter(|k| btree.get(k, now).is_some()).count()))
    });
    g.bench_function("dleft_sweep_idle_10k", |b| b.iter(|| black_box(dleft.sweep(now))));
    g.bench_function("btree_sweep_idle_10k", |b| b.iter(|| black_box(btree.sweep(now))));
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.throughput(Throughput::Elements(1024 * micro::CHURN_COHORT));
    g.bench_function("calq_churn_1k", |b| b.iter(|| black_box(micro::calq_churn(1024))));
    g.bench_function("heap_churn_1k", |b| b.iter(|| black_box(micro::heap_churn(1024))));
    g.finish();
}

criterion_group!(benches, bench_tables, bench_scheduler);
criterion_main!(benches);
