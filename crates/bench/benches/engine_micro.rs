//! Engine throughput: how many simulated-network events the
//! discrete-event core retires per second. This bounds how large an
//! experiment the repository can run; the E1–E7 harness stays well
//! inside it.

use arppath::ArpPathConfig;
use arppath_host::{PingConfig, PingHost};
use arppath_netsim::{SimDuration, SimTime};
use arppath_topo::{generic, BridgeKind, TopoBuilder};
use arppath_wire::MacAddr;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::net::Ipv4Addr;

/// Build a 4×4 ARP-Path grid with one chatty ping pair and run it for
/// `sim_ms` of simulated time; returns events processed.
fn run_grid(sim_ms: u64) -> u64 {
    let mut t = TopoBuilder::new(BridgeKind::ArpPath(ArpPathConfig::default()));
    let bridges = generic::grid(&mut t, 4, 4);
    let prober = PingHost::new(
        "p",
        MacAddr::from_index(1, 1),
        Ipv4Addr::new(10, 0, 0, 1),
        1,
        PingConfig {
            target: Ipv4Addr::new(10, 0, 0, 2),
            start_at: SimDuration::millis(1),
            interval: SimDuration::micros(200),
            count: u64::MAX,
            ..Default::default()
        },
    );
    let responder = PingHost::new(
        "r",
        MacAddr::from_index(1, 2),
        Ipv4Addr::new(10, 0, 0, 2),
        2,
        PingConfig::default(),
    );
    t.host(bridges[0], Box::new(prober));
    t.host(*bridges.last().unwrap(), Box::new(responder));
    let mut built = t.build();
    built.net.run_until(SimTime(SimDuration::millis(sim_ms).as_nanos()));
    built.net.stats().events
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    let events = run_grid(20);
    g.throughput(Throughput::Elements(events));
    g.bench_function("grid4x4_ping_5kpps_20ms", |b| b.iter(|| run_grid(20)));
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
