//! Criterion harness for the sharded parallel engine: the same E8
//! fat-tree workload at 1, 2 and 4 worker threads. The 1-shard row
//! runs the classic single-threaded engine (the baseline), so the
//! ratio between rows is the parallel speedup — or, on a single-core
//! machine, the synchronization overhead laid bare (see the
//! thread-count caveats in `BASELINES.md`).
//!
//! The workload is kept small enough for a bench loop (k=4, 16 hosts)
//! but crosses shard boundaries on every inter-pod flow; the k=8 scale
//! comparison lives in the `repro e8 --shards N` wall clocks recorded
//! in `BASELINES.md`.

use arppath_bench::experiments::e8_fattree::{run, E8Params};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_e8_sharded(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_sharded");
    g.sample_size(10);
    for shards in [1usize, 2, 4] {
        g.bench_function(&format!("k4_16hosts_5dgrams_{shards}shards"), |b| {
            b.iter(|| {
                run(&E8Params {
                    k: 4,
                    hosts_per_edge: 2,
                    datagrams: 5,
                    shards,
                    ..Default::default()
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e8_sharded);
criterion_main!(benches);
