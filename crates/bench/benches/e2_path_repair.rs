//! Criterion wrapper for experiment E2 (Fig. 3 path repair): times the
//! ARP-Path failover scenario end to end (stream + two cable cuts).

use arppath_bench::experiments::e2_repair::{run_variant, E2Params, E2Variant};
use arppath_netsim::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};

fn quick() -> E2Params {
    E2Params {
        rate_pps: 200,
        chunk_len: 500,
        duration: SimDuration::secs(5),
        failures: [SimDuration::secs(1), SimDuration::secs(3)],
        stp_timer_divisor: 20,
        stall_threshold: SimDuration::millis(50),
    }
}

fn bench_e2(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_path_repair");
    g.sample_size(10);
    g.bench_function("arppath_5s_stream_2cuts", |b| {
        b.iter(|| run_variant(E2Variant::ArpPath, &quick()))
    });
    g.bench_function("stp_5s_stream_2cuts", |b| b.iter(|| run_variant(E2Variant::Stp, &quick())));
    g.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
