//! Criterion wrapper for experiment E1 (Fig. 2 latency comparison):
//! times one ARP-Path run and one STP run of the scenario at reduced
//! probe counts. The *results* (RTT tables) come from the `repro`
//! binary; this tracks the harness's own cost.

use arppath_bench::experiments::e1_latency::{run, E1Params};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_e1(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_fig2_latency");
    g.sample_size(10);
    g.bench_function("arppath_plus_6_stp_roots_5probes", |b| {
        b.iter(|| run(&E1Params { probes: 5, ..Default::default() }))
    });
    g.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
