//! The demo's §3.1 scenario, interactively: the same Figure-2 network
//! is run once with ARP-Path bridges and once per STP root placement,
//! and the A↔B round-trip times are compared.
//!
//! ARP-Path always rides the minimum-latency path (the flood race
//! found it); STP pays whatever detour its tree imposes.
//!
//! ```text
//! cargo run --release --example latency_race
//! ```

use arppath::ArpPathConfig;
use arppath_host::{PingConfig, PingHost};
use arppath_netsim::{SimDuration, SimTime};
use arppath_stp::StpConfig;
use arppath_topo::{BridgeKind, Fig2, TopoBuilder};
use arppath_wire::MacAddr;
use std::net::Ipv4Addr;

/// Heterogeneous propagation delays (µs) in Fig-2 wiring order; the
/// fastest A↔B route is NICA—NF2—NF3—NICB.
const DELAYS_US: [u64; 8] = [5, 1, 1, 1, 2, 1, 1, 5];

fn run_once(kind: BridgeKind, root: Option<usize>, warmup: SimDuration) -> (String, f64) {
    let mut t = TopoBuilder::new(kind);
    let fig = Fig2::build_with_delays(&mut t, &DELAYS_US);
    if let Some(r) = root {
        t.stp_priority(fig.all_bridges()[r], 0x1000);
    }
    let ip_a = Ipv4Addr::new(10, 0, 0, 1);
    let ip_b = Ipv4Addr::new(10, 0, 0, 2);
    let a = PingHost::new(
        "A",
        MacAddr::from_index(1, 1),
        ip_a,
        1,
        PingConfig {
            target: ip_b,
            start_at: warmup,
            interval: SimDuration::millis(10),
            count: 50,
            ..Default::default()
        },
    );
    let b = PingHost::new("B", MacAddr::from_index(1, 2), ip_b, 2, PingConfig::default());
    let a_ix = t.host(fig.nic_a, Box::new(a));
    t.host(fig.nic_b, Box::new(b));
    let mut built = t.build();
    built.net.run_until(SimTime((warmup + SimDuration::secs(1)).as_nanos()));
    let prober = built.net.device::<PingHost>(built.host_nodes[a_ix]);
    let rtt = prober.rtt.clone();
    let label = match root {
        None => "ARP-Path".to_string(),
        Some(r) => format!("STP, root {}", ["NF1", "NF2", "NF3", "NF4", "NICA", "NICB"][r]),
    };
    (label, rtt.percentile(50.0) as f64 / 1e3)
}

fn main() {
    println!("A<->B median RTT on the Figure-2 fabric (heterogeneous link delays):\n");
    let (label, ap) =
        run_once(BridgeKind::ArpPath(ArpPathConfig::default()), None, SimDuration::millis(100));
    println!("  {label:<16} {ap:7.2} us   <- the race's choice");
    for root in 0..6 {
        let (label, rtt) = run_once(
            BridgeKind::Stp(StpConfig::standard()),
            Some(root),
            SimDuration::secs(35), // let the tree converge
        );
        let delta = (rtt / ap - 1.0) * 100.0;
        println!("  {label:<16} {rtt:7.2} us   ({delta:+.0}% vs ARP-Path)");
    }
    println!("\nSTP's tree blocks links; pairs whose tree path detours pay for it.");
    println!("ARP-Path uses whatever path won the flood race — no tree, no blocking.");
}
