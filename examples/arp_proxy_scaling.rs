//! The §2.2 scalability claim: "ARP broadcast traffic can be reduced
//! dramatically by implementing ARP Proxy function inside the
//! switches" (ref [5], EtherProxy). Many clients resolve the same
//! popular servers on a grid fabric; with the proxy on, edge bridges
//! answer from their caches and the floods never happen.
//!
//! ```text
//! cargo run --release --example arp_proxy_scaling
//! ```

use arppath::ArpPathConfig;
use arppath_host::{PingConfig, PingHost};
use arppath_netsim::{SimDuration, SimTime};
use arppath_topo::{grid, BridgeIx, BridgeKind, TopoBuilder};
use arppath_wire::MacAddr;
use std::net::Ipv4Addr;

fn run(proxy: bool) -> (u64, u64, u64) {
    let cfg = if proxy { ArpPathConfig::default().with_proxy() } else { ArpPathConfig::default() };
    let mut t = TopoBuilder::new(BridgeKind::ArpPath(cfg));
    let bridges = grid(&mut t, 3, 3);

    let ip = |k: u32| Ipv4Addr::new(10, 0, (k >> 8) as u8, (k & 0xff) as u8);
    // Two popular servers.
    for s in 0..2u32 {
        let id = 1000 + s;
        let host = PingHost::new(
            format!("srv{s}"),
            MacAddr::from_index(1, id),
            ip(id),
            id as u16,
            PingConfig::default(),
        );
        t.host(bridges[s as usize], Box::new(host));
    }
    // 24 clients, staggered, each re-resolving one of the servers in
    // three waves spaced past the 10 s host ARP timeout — the warm
    // re-resolutions are where the proxy pays off.
    let mut clients = Vec::new();
    for c in 0..24u32 {
        let id = 1 + c;
        let cfg = PingConfig {
            target: ip(1000 + c % 2),
            start_at: SimDuration::millis(20 + 10 * c as u64),
            interval: SimDuration::millis(11_000),
            count: 3,
            arp_timeout: SimDuration::secs(10),
            ..Default::default()
        };
        let host =
            PingHost::new(format!("cli{c}"), MacAddr::from_index(1, id), ip(id), id as u16, cfg);
        clients.push(t.host(bridges[(c as usize * 7 + 3) % bridges.len()], Box::new(host)));
    }
    let mut built = t.build();
    built.net.run_until(SimTime(SimDuration::secs(40).as_nanos()));

    let floods: u64 = (0..bridges.len())
        .map(|i| built.arppath(BridgeIx(i)).ap_counters().arp_request_floods)
        .sum();
    let proxied: u64 =
        (0..bridges.len()).map(|i| built.arppath(BridgeIx(i)).ap_counters().proxy_replies).sum();
    let resolved: u64 = clients
        .iter()
        .map(|&c| built.net.device::<PingHost>(built.host_nodes[c]).stack.counters().arp_resolved)
        .sum();
    (floods, proxied, resolved)
}

fn main() {
    println!("24 clients resolving 2 popular servers on a 3x3 grid fabric:\n");
    let (floods_off, _, resolved_off) = run(false);
    println!("proxy OFF: {floods_off:4} bridge flood events, {resolved_off} resolutions");
    let (floods_on, proxied, resolved_on) = run(true);
    println!("proxy ON : {floods_on:4} bridge flood events, {resolved_on} resolutions ({proxied} answered from switch caches)");
    let saved = 100.0 * (1.0 - floods_on as f64 / floods_off as f64);
    println!("\nbroadcast flood events reduced by {saved:.0}%");
}
