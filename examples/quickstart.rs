//! Quickstart: build the paper's Figure-2 network with ARP-Path
//! bridges, let host A ping host B, and watch the protocol discover
//! the minimum-latency path.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use arppath::ArpPathConfig;
use arppath_host::{PingConfig, PingHost};
use arppath_netsim::{SimDuration, SimTime};
use arppath_topo::{BridgeIx, BridgeKind, Fig2, TopoBuilder};
use arppath_wire::MacAddr;
use std::net::Ipv4Addr;

fn main() {
    // 1. A topology whose bridges all speak ARP-Path.
    let mut t = TopoBuilder::new(BridgeKind::ArpPath(ArpPathConfig::default()));
    let fig = Fig2::build(&mut t);

    // 2. Two ordinary hosts. They run plain ARP + ICMP and have never
    //    heard of ARP-Path — transparency is the paper's point.
    let ip_a = Ipv4Addr::new(10, 0, 0, 1);
    let ip_b = Ipv4Addr::new(10, 0, 0, 2);
    let host_a = PingHost::new(
        "hostA",
        MacAddr::from_index(1, 1),
        ip_a,
        1,
        PingConfig {
            target: ip_b,
            start_at: SimDuration::millis(10),
            interval: SimDuration::millis(10),
            count: 10,
            ..Default::default()
        },
    );
    let host_b = PingHost::new("hostB", MacAddr::from_index(1, 2), ip_b, 2, PingConfig::default());
    let a_ix = t.host(fig.nic_a, Box::new(host_a));
    t.host(fig.nic_b, Box::new(host_b));

    // 3. Run for 200 simulated milliseconds.
    let mut built = t.build();
    built.net.run_until(SimTime(SimDuration::millis(200).as_nanos()));

    // 4. What did the race decide? Each bridge's entry for hostA's MAC
    //    names the port its *winning* flood copy arrived on — the
    //    chain of these ports is the reverse minimum-latency path.
    println!("path-table entries for hostA ({}):", MacAddr::from_index(1, 1));
    let now = built.net.now();
    for (i, name) in ["NF1", "NF2", "NF3", "NF4", "NICA", "NICB"].iter().enumerate() {
        let bridge = built.arppath(BridgeIx(i));
        match bridge.entry_of(MacAddr::from_index(1, 1), now) {
            Some(e) => println!("  {name}: port {} ({:?})", e.port.0, e.state),
            None => println!("  {name}: (no entry)"),
        }
    }

    // 5. And the latency the hosts actually saw.
    let prober = built.net.device::<PingHost>(built.host_nodes[a_ix]);
    let rtt = prober.rtt.clone();
    println!("\nping hostA -> hostB: {}", rtt.summary_micros());
    println!("(no spanning tree, no link-state protocol, and zero configuration on the hosts)");
}
