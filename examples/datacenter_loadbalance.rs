//! Path diversity at data-center scale (paper §2.2 "load distribution
//! and path diversity"; the FastPath work of ref [4] targets exactly
//! these fabrics): many host pairs ping across a k=4 fat-tree, and we
//! look at how the traffic spread over the fabric links.
//!
//! ```text
//! cargo run --release --example datacenter_loadbalance
//! ```

use arppath::ArpPathConfig;
use arppath_host::{PingConfig, PingHost};
use arppath_metrics::jain_index;
use arppath_netsim::{SimDuration, SimTime};
use arppath_topo::{fat_tree, BridgeKind, TopoBuilder};
use arppath_wire::MacAddr;
use std::net::Ipv4Addr;

fn main() {
    let mut t = TopoBuilder::new(BridgeKind::ArpPath(ArpPathConfig::default()));
    let ft = fat_tree(&mut t, 4);
    println!(
        "k=4 fat-tree: {} core, {} aggregation, {} edge switches",
        ft.core.len(),
        ft.aggregation.len(),
        ft.edge.len()
    );

    // One host per edge switch; pair host i with the host in the
    // "opposite" pod so every flow crosses the core.
    let n = ft.edge.len() as u32;
    let mut probers = Vec::new();
    for i in 0..n {
        let ip = |k: u32| Ipv4Addr::new(10, 0, (k >> 8) as u8, (k & 0xff) as u8 + 1);
        let peer = (i + n / 2) % n;
        let cfg = PingConfig {
            target: ip(peer),
            start_at: SimDuration::millis(20 + 3 * i as u64),
            interval: SimDuration::millis(10),
            count: 50,
            ..Default::default()
        };
        let host = PingHost::new(
            format!("h{i}"),
            MacAddr::from_index(1, i + 1),
            ip(i),
            (i + 1) as u16,
            cfg,
        );
        probers.push(t.host(ft.edge[i as usize], Box::new(host)));
    }

    let mut built = t.build();
    built.net.run_until(SimTime(SimDuration::secs(2).as_nanos()));

    let loads: Vec<f64> =
        built.bridge_links.iter().map(|&l| built.net.link(l).total_tx_frames() as f64).collect();
    let used = loads.iter().filter(|&&x| x > 0.0).count();
    println!("\nfabric links                 : {}", loads.len());
    println!("links that carried traffic   : {used}");
    println!("Jain fairness of link loads  : {:.3}", jain_index(&loads));

    let mut delivered = 0u64;
    let mut sent = 0u64;
    for &p in &probers {
        let prober = built.net.device::<PingHost>(built.host_nodes[p]);
        delivered += prober.received;
        sent += prober.sent();
    }
    println!("probes delivered             : {delivered}/{sent}");
    println!("\nEvery pair's ARP race settles on its own fastest path, so parallel");
    println!("fabric links all carry traffic — no spanning tree funnelling flows");
    println!("through one root.");
}
