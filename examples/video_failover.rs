//! The demo's §3.2 scenario: host A streams "video" to host B through
//! the Figure-3 fabric while links on the path get cut. ARP-Path's
//! PathFail/PathRequest/PathReply repair re-routes in a couple of
//! network round trips; the viewer barely notices.
//!
//! ```text
//! cargo run --release --example video_failover
//! ```

use arppath::ArpPathConfig;
use arppath_host::{StreamClient, StreamClientConfig, StreamConfig, StreamServer};
use arppath_netfpga::NetFpgaParams;
use arppath_netsim::{SimDuration, SimTime};
use arppath_topo::{fig3_topology, BridgeIx, BridgeKind};
use arppath_wire::MacAddr;
use std::net::Ipv4Addr;

fn main() {
    // The paper's demo configuration: ARP-Path inside the NetFPGA
    // pipeline model.
    let kind = BridgeKind::ArpPathNetFpga(ArpPathConfig::default(), NetFpgaParams::default());
    let (mut t, fig) = fig3_topology(kind);

    let ip_a = Ipv4Addr::new(10, 0, 0, 1);
    let ip_b = Ipv4Addr::new(10, 0, 0, 2);
    let server = StreamServer::new(
        "A",
        MacAddr::from_index(1, 1),
        ip_a,
        StreamConfig {
            client: ip_b,
            start_at: SimDuration::millis(100),
            rate_pps: 500, // ~4 Mbit/s at 1000-byte chunks
            chunk_len: 1000,
            total_chunks: 15_000, // 30 s of video
        },
    );
    let client = StreamClient::new(
        "B",
        MacAddr::from_index(1, 2),
        ip_b,
        StreamClientConfig { server: ip_a, report_interval: SimDuration::millis(500) },
    );
    let a_ix = t.host(fig.host_a_bridge(), Box::new(server));
    let b_ix = t.host(fig.host_b_bridge(), Box::new(client));
    let mut built = t.build();

    // Two successive cable cuts, each hitting the then-active path.
    let cut1 = built.link_between(fig.nf[1], fig.nf[3]).unwrap(); // NF2—NF4
    let cut2 = built.link_between(fig.nf[0], fig.nf[2]).unwrap(); // NF1—NF3
    built.net.schedule_link_down(cut1, SimTime(SimDuration::secs(10).as_nanos()));
    built.net.schedule_link_down(cut2, SimTime(SimDuration::secs(20).as_nanos()));
    println!(
        "streaming 30s of video at 500 chunks/s; cutting NF2-NF4 at t=10s, NF1-NF3 at t=20s...\n"
    );

    built.net.run_until(SimTime(SimDuration::secs(32).as_nanos()));

    let server = built.net.device::<StreamServer>(built.host_nodes[a_ix]);
    let sent = server.sent;
    let client = built.net.device::<StreamClient>(built.host_nodes[b_ix]);
    println!("chunks sent      : {sent}");
    println!("chunks received  : {}", client.received);
    println!("chunks lost      : {}", client.lost());
    if let Some((at, gap)) = client.arrivals.max_gap() {
        println!("longest stall    : {:.2} ms (at t={:.3} s)", gap as f64 / 1e6, at as f64 / 1e9);
    }
    let stalls = client.stalls_over(SimDuration::millis(50));
    println!("stalls > 50 ms   : {}", stalls.len());

    println!("\nrepair activity per bridge:");
    for (i, name) in ["NF1", "NF2", "NF3", "NF4"].iter().enumerate() {
        let ap = built.arppath(BridgeIx(i)).ap_counters();
        println!(
            "  {name}: misses={} repairs={} path-requests={} path-replies={} flushes={}",
            ap.unicast_misses,
            ap.repairs_initiated,
            ap.path_requests_originated,
            ap.path_replies_sent,
            ap.link_down_flushes,
        );
    }
    println!("\n(run the STP baseline via `cargo run -p arppath-bench --bin repro -- e2`");
    println!(" to see the same failures cost tens of seconds instead)");
}
